//! Property tests for schedules and TVGs: the dilation contract on
//! arbitrary schedule ASTs, periodicity laws, and traversal invariants.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tvg_model::{Latency, Presence, Time, TvgBuilder};

/// Strategy: a random presence AST over `u64` (no `Custom` — those are
/// covered by targeted unit tests; everything else composes here).
fn arb_presence() -> impl Strategy<Value = Presence<u64>> {
    let leaf = prop_oneof![
        Just(Presence::Always),
        Just(Presence::Never),
        (0u64..40).prop_map(Presence::At),
        (0u64..40).prop_map(Presence::After),
        (1u64..40).prop_map(Presence::Before),
        (0u64..20, 0u64..20).prop_map(|(a, b)| Presence::Window {
            from: a.min(b),
            until: a.max(b),
        }),
        proptest::collection::btree_set(0u64..40, 0..5).prop_map(Presence::FiniteSet),
        (1u64..8, proptest::collection::btree_set(0u64..8, 0..4)).prop_map(
            |(period, raw)| Presence::Periodic {
                phases: raw.into_iter().map(|p| p % period).collect(),
                period,
            }
        ),
        Just(Presence::PqPower { p: 2, q: 3 }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|p| Presence::Not(Box::new(p))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Presence::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Presence::Or(Box::new(a), Box::new(b))),
            (1u64..5, inner).prop_map(|(factor, p)| p.dilate(factor)),
        ]
    })
}

/// Strategy: a random latency.
fn arb_latency() -> impl Strategy<Value = Latency<u64>> {
    prop_oneof![
        (0u64..10).prop_map(Latency::Const),
        (0u64..4, 0u64..10).prop_map(|(mul, add)| Latency::Affine { mul, add }),
        (1u64..4, 0u64..6).prop_map(|(f, c)| Latency::Const(c).dilate(f)),
    ]
}

proptest! {
    #[test]
    fn dilation_contract_for_presence(p in arb_presence(), factor in 1u64..6, t in 0u64..200) {
        let dilated = p.clone().dilate(factor);
        let expected = t % factor == 0 && p.is_present(&(t / factor));
        prop_assert_eq!(dilated.is_present(&t), expected);
    }

    #[test]
    fn dilation_by_one_is_identity(p in arb_presence(), t in 0u64..100) {
        prop_assert_eq!(p.clone().dilate(1).is_present(&t), p.is_present(&t));
    }

    #[test]
    fn boolean_combinators_obey_logic(a in arb_presence(), b in arb_presence(), t in 0u64..100) {
        let not_a = Presence::Not(Box::new(a.clone()));
        prop_assert_eq!(not_a.is_present(&t), !a.is_present(&t));
        let and = Presence::And(Box::new(a.clone()), Box::new(b.clone()));
        prop_assert_eq!(and.is_present(&t), a.is_present(&t) && b.is_present(&t));
        let or = Presence::Or(Box::new(a.clone()), Box::new(b.clone()));
        prop_assert_eq!(or.is_present(&t), a.is_present(&t) || b.is_present(&t));
    }

    #[test]
    fn next_present_is_sound_and_minimal(p in arb_presence(), from in 0u64..60, span in 0u64..40) {
        let until = from + span;
        match p.next_present_within(&from, &until) {
            Some(t) => {
                prop_assert!(t >= from && t <= until);
                prop_assert!(p.is_present(&t));
                for earlier in from..t {
                    prop_assert!(!p.is_present(&earlier));
                }
            }
            None => {
                for t in from..=until {
                    prop_assert!(!p.is_present(&t));
                }
            }
        }
    }

    #[test]
    fn latency_dilation_contract(l in arb_latency(), factor in 1u64..6, t in 0u64..100) {
        let dilated = l.clone().dilate(factor);
        if let (Some(inner_arrival), Some(dilated_arrival)) =
            (l.arrival(&t), dilated.arrival(&(t * factor)))
        {
            prop_assert_eq!(dilated_arrival, inner_arrival * factor);
        }
    }

    #[test]
    fn arrival_never_precedes_departure(l in arb_latency(), t in 0u64..1000) {
        if let Some(a) = l.arrival(&t) {
            prop_assert!(a >= t);
        }
    }

    #[test]
    fn periodic_schedules_are_periodic(
        period in 1u64..10,
        raw in proptest::collection::btree_set(0u64..10, 0..6),
        t in 0u64..100,
    ) {
        let phases: BTreeSet<u64> = raw.into_iter().map(|p| p % period).collect();
        let p = Presence::Periodic { period, phases };
        prop_assert_eq!(p.is_present(&t), p.is_present(&(t + period)));
    }

    #[test]
    fn tvg_traversal_respects_schedules(
        p in arb_presence(),
        l in arb_latency(),
        t in 0u64..100,
    ) {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        let e = b.edge(v[0], v[1], 'a', p.clone(), l.clone()).expect("valid");
        let g = b.build().expect("valid");
        match g.traverse(e, &t) {
            Some(arrival) => {
                prop_assert!(p.is_present(&t));
                prop_assert_eq!(Some(arrival), l.arrival(&t));
            }
            None => {
                prop_assert!(!p.is_present(&t) || l.arrival(&t).is_none());
            }
        }
    }

    #[test]
    fn whole_graph_dilation_matches_edge_dilation(
        p in arb_presence(),
        l in arb_latency(),
        d in 0u64..5,
        t in 0u64..120,
    ) {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        let e = b.edge(v[0], v[1], 'a', p, l).expect("valid");
        let g = b.build().expect("valid");
        let dilated = g.dilate(d);
        let factor = d + 1;
        // Dilated graph at factor·t behaves as the original at t.
        if t % factor == 0 {
            let orig = g.traverse(e, &(t / factor));
            let dil = dilated.traverse(e, &t);
            prop_assert_eq!(dil, orig.map(|a| a * factor));
        } else {
            prop_assert_eq!(dilated.traverse(e, &t), None);
        }
    }

    #[test]
    fn snapshot_is_consistent_with_presence(p in arb_presence(), t in 0u64..60) {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        let e = b.edge(v[0], v[1], 'x', p.clone(), Latency::unit()).expect("valid");
        let g = b.build().expect("valid");
        prop_assert_eq!(g.snapshot(&t).contains(&e), p.is_present(&t));
    }

    #[test]
    fn time_trait_laws_u64(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        prop_assert_eq!(Time::checked_add(&a, &b), a.checked_add(b));
        if a >= b {
            prop_assert_eq!(Time::checked_sub(&a, &b), Some(a - b));
        } else {
            prop_assert_eq!(Time::checked_sub(&a, &b), None);
        }
        prop_assert_eq!(a.succ(), a + 1);
    }
}
