//! Property tests for the formal-language substrate: algebraic laws of
//! automata operations, parser round-trips, and wqo axioms.
//!
//! Runs on `tvg-testkit`'s deterministic harness; random DFAs and words
//! come from `tvg_testkit::gen`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tvg_langs::sample::{random_word, words_upto};
use tvg_langs::wqo::{is_subword, upward_closure_nfa};
use tvg_langs::{Alphabet, Dfa, Letter, Nfa, Word};
use tvg_testkit::gen;

fn ab() -> Alphabet {
    Alphabet::ab()
}

/// A random total DFA over {a,b} with up to `n` states.
fn arb_dfa<R: Rng + ?Sized>(rng: &mut R, max_states: usize) -> Dfa {
    gen::dfa(rng, &ab(), max_states)
}

/// A random word over {a,b} of length ≤ 7.
fn arb_word<R: Rng + ?Sized>(rng: &mut R) -> Word {
    gen::word(rng, &ab(), 7)
}

#[test]
fn minimization_preserves_language() {
    tvg_testkit::check("minimization_preserves_language", |rng, _| {
        let dfa = arb_dfa(rng, 6);
        let w = arb_word(rng);
        let min = dfa.minimize();
        assert_eq!(dfa.accepts(&w), min.accepts(&w));
        assert!(min.num_states() <= dfa.num_states());
    });
}

#[test]
fn minimization_is_idempotent() {
    tvg_testkit::check("minimization_is_idempotent", |rng, _| {
        let once = arb_dfa(rng, 6).minimize();
        let twice = once.minimize();
        assert_eq!(once.num_states(), twice.num_states());
        assert!(once.equivalent_to(&twice));
    });
}

#[test]
fn complement_involution() {
    tvg_testkit::check("complement_involution", |rng, _| {
        let dfa = arb_dfa(rng, 5);
        let w = arb_word(rng);
        assert_eq!(dfa.complement().complement().accepts(&w), dfa.accepts(&w));
        assert_ne!(dfa.complement().accepts(&w), dfa.accepts(&w));
    });
}

#[test]
fn de_morgan_on_languages() {
    tvg_testkit::check("de_morgan_on_languages", |rng, _| {
        let a = arb_dfa(rng, 4);
        let b = arb_dfa(rng, 4);
        let w = arb_word(rng);
        // ¬(A ∪ B) = ¬A ∩ ¬B
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersection(&b.complement());
        assert_eq!(lhs.accepts(&w), rhs.accepts(&w));
    });
}

#[test]
fn difference_is_intersection_with_complement() {
    tvg_testkit::check("difference_is_intersection_with_complement", |rng, _| {
        let a = arb_dfa(rng, 4);
        let b = arb_dfa(rng, 4);
        let w = arb_word(rng);
        let lhs = a.difference(&b);
        let rhs = a.intersection(&b.complement());
        assert_eq!(lhs.accepts(&w), rhs.accepts(&w));
    });
}

#[test]
fn equivalence_is_reflexive_and_witnessed() {
    tvg_testkit::check("equivalence_is_reflexive_and_witnessed", |rng, _| {
        let a = arb_dfa(rng, 5);
        let b = arb_dfa(rng, 5);
        assert!(a.equivalent_to(&a));
        match a.distinguishing_word(&b) {
            None => assert!(a.equivalent_to(&b)),
            Some(w) => assert_ne!(a.accepts(&w), b.accepts(&w)),
        }
    });
}

#[test]
fn count_matches_enumeration() {
    tvg_testkit::check("count_matches_enumeration", |rng, _| {
        let dfa = arb_dfa(rng, 4);
        let counts = dfa.count_words_per_length(6);
        let langs = dfa.language_upto(6);
        for (len, &c) in counts.iter().enumerate() {
            let brute = langs.iter().filter(|w| w.len() == len).count() as u64;
            assert_eq!(c, brute);
        }
    });
}

#[test]
fn subset_construction_preserves_language() {
    tvg_testkit::check("subset_construction_preserves_language", |rng, _| {
        let dfa = arb_dfa(rng, 4);
        let w = arb_word(rng);
        // Round-trip through an NFA (literal transitions of the DFA).
        let mut nfa = Nfa::new(ab(), dfa.num_states());
        nfa.add_start(dfa.start()).expect("in range");
        for s in 0..dfa.num_states() {
            if dfa.is_accepting(s) {
                nfa.add_accepting(s).expect("in range");
            }
            for letter in ab().iter() {
                let t = dfa.step(s, letter).expect("total");
                nfa.add_transition(s, Some(letter.as_char()), t)
                    .expect("valid");
            }
        }
        assert_eq!(nfa.to_dfa().accepts(&w), dfa.accepts(&w));
    });
}

#[test]
fn reverse_reverse_is_identity_on_language() {
    tvg_testkit::check("reverse_reverse_is_identity_on_language", |rng, _| {
        let w = arb_word(rng);
        let probe = arb_word(rng);
        let nfa = Nfa::literal(ab(), &w);
        let rr = nfa.reverse().reverse();
        assert_eq!(rr.accepts(&probe), nfa.accepts(&probe));
    });
}

#[test]
fn subword_embedding_axioms() {
    tvg_testkit::check("subword_embedding_axioms", |rng, _| {
        let u = arb_word(rng);
        let v = arb_word(rng);
        let w = arb_word(rng);
        // Reflexivity.
        assert!(is_subword(&u, &u));
        // Transitivity.
        if is_subword(&u, &v) && is_subword(&v, &w) {
            assert!(is_subword(&u, &w));
        }
        // Antisymmetry (on words it is a partial order).
        if is_subword(&u, &v) && is_subword(&v, &u) {
            assert_eq!(&u, &v);
        }
        // Compatibility with concatenation.
        if is_subword(&u, &v) {
            assert!(is_subword(&u, &v.concat(&w)));
            assert!(is_subword(&u, &w.concat(&v)));
        }
    });
}

#[test]
fn upward_closure_is_upward_closed() {
    // Each case checks a bounded universe exhaustively, so fewer cases
    // suffice.
    let config = tvg_testkit::Config::named_with_cases("upward_closure_is_upward_closed", 16);
    tvg_testkit::check_with(config, |rng, _| {
        let basis: Vec<Word> = (0..rng.gen_range(1..3)).map(|_| arb_word(rng)).collect();
        let nfa = upward_closure_nfa(&basis, &ab());
        // Check on the bounded universe: if accepted and u ⊑ w then w accepted.
        let dfa = nfa.to_dfa();
        for u in words_upto(&ab(), 4) {
            if !dfa.accepts(&u) {
                continue;
            }
            for w in words_upto(&ab(), 5) {
                if is_subword(&u, &w) {
                    assert!(dfa.accepts(&w));
                }
            }
        }
    });
}

#[test]
fn regex_synthesis_roundtrips_random_dfas() {
    tvg_testkit::check("regex_synthesis_roundtrips_random_dfas", |rng, _| {
        let min = arb_dfa(rng, 4).minimize();
        let re = tvg_langs::synth::dfa_to_regex(&min);
        let back = re.to_nfa(&ab()).to_dfa();
        assert!(back.equivalent_to(&min), "{re}");
    });
}

#[test]
fn random_word_generation_is_sound() {
    tvg_testkit::check("random_word_generation_is_sound", |rng, _| {
        let len = rng.gen_range(0usize..20);
        let seed = rng.gen::<u64>();
        let w = random_word(&mut StdRng::seed_from_u64(seed), &ab(), len);
        assert_eq!(w.len(), len);
        assert!(w.is_over(&ab()));
    });
}

#[test]
fn word_concat_associates() {
    tvg_testkit::check("word_concat_associates", |rng, _| {
        let u = arb_word(rng);
        let v = arb_word(rng);
        let w = arb_word(rng);
        assert_eq!(u.concat(&v).concat(&w), u.concat(&v.concat(&w)));
        assert_eq!(Word::empty().concat(&u), u.clone());
        assert_eq!(u.concat(&Word::empty()), u);
    });
}

#[test]
fn reversal_is_involutive_and_antimultiplicative() {
    tvg_testkit::check("reversal_is_involutive_and_antimultiplicative", |rng, _| {
        let u = arb_word(rng);
        let v = arb_word(rng);
        assert_eq!(u.reversed().reversed(), u.clone());
        assert_eq!(u.concat(&v).reversed(), v.reversed().concat(&u.reversed()));
    });
}

#[test]
fn letters_display_as_their_char() {
    for c in ['a', 'z', 'A', '0', '~'] {
        assert_eq!(
            Letter::new(c).expect("printable").to_string(),
            c.to_string()
        );
    }
}
