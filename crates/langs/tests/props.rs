//! Property tests for the formal-language substrate: algebraic laws of
//! automata operations, parser round-trips, and wqo axioms.

use proptest::prelude::*;
use tvg_langs::sample::{random_word, words_upto};
use tvg_langs::wqo::{is_subword, upward_closure_nfa};
use tvg_langs::{Alphabet, Dfa, Letter, Nfa, Word};

fn ab() -> Alphabet {
    Alphabet::ab()
}

/// Strategy: a random total DFA over {a,b} with up to `n` states.
fn arb_dfa(max_states: usize) -> impl Strategy<Value = Dfa> {
    (2..=max_states).prop_flat_map(move |n| {
        (
            proptest::collection::vec(proptest::collection::vec(0..n, 2), n),
            0..n,
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(delta, start, accepting)| {
                Dfa::new(ab(), delta, start, accepting).expect("generated shape is valid")
            })
    })
}

/// Strategy: a random word over {a,b} of length ≤ 8.
fn arb_word() -> impl Strategy<Value = Word> {
    proptest::collection::vec(0..2usize, 0..8).prop_map(|idx| {
        idx.into_iter().map(|i| ab().letter(i)).collect()
    })
}

proptest! {
    #[test]
    fn minimization_preserves_language(dfa in arb_dfa(6), w in arb_word()) {
        let min = dfa.minimize();
        prop_assert_eq!(dfa.accepts(&w), min.accepts(&w));
        prop_assert!(min.num_states() <= dfa.num_states());
    }

    #[test]
    fn minimization_is_idempotent(dfa in arb_dfa(6)) {
        let once = dfa.minimize();
        let twice = once.minimize();
        prop_assert_eq!(once.num_states(), twice.num_states());
        prop_assert!(once.equivalent_to(&twice));
    }

    #[test]
    fn complement_involution(dfa in arb_dfa(5), w in arb_word()) {
        prop_assert_eq!(dfa.complement().complement().accepts(&w), dfa.accepts(&w));
        prop_assert_ne!(dfa.complement().accepts(&w), dfa.accepts(&w));
    }

    #[test]
    fn de_morgan_on_languages(a in arb_dfa(4), b in arb_dfa(4), w in arb_word()) {
        // ¬(A ∪ B) = ¬A ∩ ¬B
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersection(&b.complement());
        prop_assert_eq!(lhs.accepts(&w), rhs.accepts(&w));
    }

    #[test]
    fn difference_is_intersection_with_complement(a in arb_dfa(4), b in arb_dfa(4), w in arb_word()) {
        let lhs = a.difference(&b);
        let rhs = a.intersection(&b.complement());
        prop_assert_eq!(lhs.accepts(&w), rhs.accepts(&w));
    }

    #[test]
    fn equivalence_is_reflexive_and_witnessed(a in arb_dfa(5), b in arb_dfa(5)) {
        prop_assert!(a.equivalent_to(&a));
        match a.distinguishing_word(&b) {
            None => prop_assert!(a.equivalent_to(&b)),
            Some(w) => prop_assert_ne!(a.accepts(&w), b.accepts(&w)),
        }
    }

    #[test]
    fn count_matches_enumeration(dfa in arb_dfa(4)) {
        let counts = dfa.count_words_per_length(6);
        let langs = dfa.language_upto(6);
        for (len, &c) in counts.iter().enumerate() {
            let brute = langs.iter().filter(|w| w.len() == len).count() as u64;
            prop_assert_eq!(c, brute);
        }
    }

    #[test]
    fn subset_construction_preserves_language(dfa in arb_dfa(4), w in arb_word()) {
        // Round-trip through an NFA (literal transitions of the DFA).
        let mut nfa = Nfa::new(ab(), dfa.num_states());
        nfa.add_start(dfa.start()).expect("in range");
        for s in 0..dfa.num_states() {
            if dfa.is_accepting(s) {
                nfa.add_accepting(s).expect("in range");
            }
            for letter in ab().iter() {
                let t = dfa.step(s, letter).expect("total");
                nfa.add_transition(s, Some(letter.as_char()), t).expect("valid");
            }
        }
        prop_assert_eq!(nfa.to_dfa().accepts(&w), dfa.accepts(&w));
    }

    #[test]
    fn reverse_reverse_is_identity_on_language(w in arb_word(), probe in arb_word()) {
        let nfa = Nfa::literal(ab(), &w);
        let rr = nfa.reverse().reverse();
        prop_assert_eq!(rr.accepts(&probe), nfa.accepts(&probe));
    }

    #[test]
    fn subword_embedding_axioms(u in arb_word(), v in arb_word(), w in arb_word()) {
        // Reflexivity.
        prop_assert!(is_subword(&u, &u));
        // Transitivity.
        if is_subword(&u, &v) && is_subword(&v, &w) {
            prop_assert!(is_subword(&u, &w));
        }
        // Antisymmetry (on words it is a partial order).
        if is_subword(&u, &v) && is_subword(&v, &u) {
            prop_assert_eq!(&u, &v);
        }
        // Compatibility with concatenation.
        if is_subword(&u, &v) {
            prop_assert!(is_subword(&u, &v.concat(&w)));
            prop_assert!(is_subword(&u, &w.concat(&v)));
        }
    }

    #[test]
    fn upward_closure_is_upward_closed(basis in proptest::collection::vec(arb_word(), 1..3)) {
        let nfa = upward_closure_nfa(&basis, &ab());
        // Check on the bounded universe: if accepted and u ⊑ w then w accepted.
        let dfa = nfa.to_dfa();
        for u in words_upto(&ab(), 4) {
            if !dfa.accepts(&u) {
                continue;
            }
            for w in words_upto(&ab(), 5) {
                if is_subword(&u, &w) {
                    prop_assert!(dfa.accepts(&w));
                }
            }
        }
    }

    #[test]
    fn regex_synthesis_roundtrips_random_dfas(dfa in arb_dfa(4)) {
        let min = dfa.minimize();
        let re = tvg_langs::synth::dfa_to_regex(&min);
        let back = re.to_nfa(&ab()).to_dfa();
        prop_assert!(back.equivalent_to(&min), "{re}");
    }

    #[test]
    fn random_word_generation_is_sound(len in 0usize..20, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let w = random_word(&mut StdRng::seed_from_u64(seed), &ab(), len);
        prop_assert_eq!(w.len(), len);
        prop_assert!(w.is_over(&ab()));
    }

    #[test]
    fn word_concat_associates(u in arb_word(), v in arb_word(), w in arb_word()) {
        prop_assert_eq!(u.concat(&v).concat(&w), u.concat(&v.concat(&w)));
        prop_assert_eq!(Word::empty().concat(&u), u.clone());
        prop_assert_eq!(u.concat(&Word::empty()), u);
    }

    #[test]
    fn reversal_is_involutive_and_antimultiplicative(u in arb_word(), v in arb_word()) {
        prop_assert_eq!(u.reversed().reversed(), u.clone());
        prop_assert_eq!(u.concat(&v).reversed(), v.reversed().concat(&u.reversed()));
    }
}

#[test]
fn letters_display_as_their_char() {
    for c in ['a', 'z', 'A', '0', '~'] {
        assert_eq!(Letter::new(c).expect("printable").to_string(), c.to_string());
    }
}
