//! Deterministic finite automata.
//!
//! Theorem 2.2 of the paper states that the languages of TVGs with waiting
//! are exactly the regular languages; this module supplies the regular side
//! of that equation: total DFAs with product constructions, minimization,
//! emptiness, equivalence with witnesses, and language enumeration.

use crate::{Alphabet, Letter, Word};
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Errors from constructing a malformed [`Dfa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfaError {
    /// The automaton has no states.
    NoStates,
    /// The start state index is out of range.
    BadStart(usize),
    /// `accepting` has a different length than the transition table.
    AcceptingLengthMismatch {
        /// Number of states in the transition table.
        states: usize,
        /// Length of the accepting vector.
        accepting: usize,
    },
    /// A row of the transition table has the wrong width.
    BadRowWidth {
        /// State whose row is malformed.
        state: usize,
        /// Expected width (alphabet size).
        expected: usize,
        /// Actual width found.
        got: usize,
    },
    /// A transition targets a state that does not exist.
    BadTarget {
        /// Source state of the bad transition.
        state: usize,
        /// Letter index of the bad transition.
        letter: usize,
        /// The out-of-range target.
        target: usize,
    },
}

impl fmt::Display for DfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfaError::NoStates => write!(f, "dfa must have at least one state"),
            DfaError::BadStart(s) => write!(f, "start state {s} is out of range"),
            DfaError::AcceptingLengthMismatch { states, accepting } => write!(
                f,
                "accepting vector has length {accepting} but there are {states} states"
            ),
            DfaError::BadRowWidth {
                state,
                expected,
                got,
            } => write!(
                f,
                "transition row for state {state} has width {got}, expected {expected}"
            ),
            DfaError::BadTarget {
                state,
                letter,
                target,
            } => write!(
                f,
                "transition from state {state} on letter {letter} targets missing state {target}"
            ),
        }
    }
}

impl Error for DfaError {}

/// A total deterministic finite automaton.
///
/// Every state has exactly one outgoing transition per alphabet letter, so
/// `accepts` runs in `O(|w|)` with no failure cases. Words containing
/// letters outside the alphabet are rejected.
///
/// ```
/// use tvg_langs::{Alphabet, Dfa, word};
///
/// // Even number of a's over {a,b}.
/// let dfa = Dfa::new(
///     Alphabet::ab(),
///     vec![vec![1, 0], vec![0, 1]],
///     0,
///     vec![true, false],
/// )?;
/// assert!(dfa.accepts(&word("abab")));
/// assert!(!dfa.accepts(&word("ab")));
/// # Ok::<(), tvg_langs::DfaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet: Alphabet,
    /// `delta[s][a]` is the successor of state `s` on letter index `a`.
    delta: Vec<Vec<usize>>,
    start: usize,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA after validating the transition table shape.
    ///
    /// # Errors
    ///
    /// Returns a [`DfaError`] describing the first structural problem found.
    pub fn new(
        alphabet: Alphabet,
        delta: Vec<Vec<usize>>,
        start: usize,
        accepting: Vec<bool>,
    ) -> Result<Self, DfaError> {
        let n = delta.len();
        if n == 0 {
            return Err(DfaError::NoStates);
        }
        if start >= n {
            return Err(DfaError::BadStart(start));
        }
        if accepting.len() != n {
            return Err(DfaError::AcceptingLengthMismatch {
                states: n,
                accepting: accepting.len(),
            });
        }
        for (s, row) in delta.iter().enumerate() {
            if row.len() != alphabet.len() {
                return Err(DfaError::BadRowWidth {
                    state: s,
                    expected: alphabet.len(),
                    got: row.len(),
                });
            }
            for (a, &t) in row.iter().enumerate() {
                if t >= n {
                    return Err(DfaError::BadTarget {
                        state: s,
                        letter: a,
                        target: t,
                    });
                }
            }
        }
        Ok(Dfa {
            alphabet,
            delta,
            start,
            accepting,
        })
    }

    /// The DFA accepting the empty language over `alphabet`.
    #[must_use]
    pub fn empty_language(alphabet: Alphabet) -> Self {
        let width = alphabet.len();
        Dfa {
            alphabet,
            delta: vec![vec![0; width]],
            start: 0,
            accepting: vec![false],
        }
    }

    /// The DFA accepting every word over `alphabet` (including ε).
    #[must_use]
    pub fn universal(alphabet: Alphabet) -> Self {
        let width = alphabet.len();
        Dfa {
            alphabet,
            delta: vec![vec![0; width]],
            start: 0,
            accepting: vec![true],
        }
    }

    /// The alphabet this DFA reads.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.delta.len()
    }

    /// Start state index.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether state `s` is accepting.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn is_accepting(&self, s: usize) -> bool {
        self.accepting[s]
    }

    /// The state reached from `s` on letter `l`, or `None` if `l` is not in
    /// the alphabet.
    #[must_use]
    pub fn step(&self, s: usize, l: Letter) -> Option<usize> {
        self.alphabet.index_of(l).map(|a| self.delta[s][a])
    }

    /// Runs the DFA on `w` from the start state; `None` if `w` uses a
    /// letter outside the alphabet.
    #[must_use]
    pub fn run(&self, w: &Word) -> Option<usize> {
        let mut s = self.start;
        for l in w.iter() {
            s = self.step(s, l)?;
        }
        Some(s)
    }

    /// Returns `true` iff the DFA accepts `w`. Words using foreign letters
    /// are rejected.
    #[must_use]
    pub fn accepts(&self, w: &Word) -> bool {
        self.run(w).is_some_and(|s| self.accepting[s])
    }

    /// Complements the accepted language (in place on a clone).
    #[must_use]
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accepting {
            *a = !*a;
        }
        out
    }

    /// Product construction combining acceptance with `op`.
    ///
    /// Only reachable pairs are materialized.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ — combining languages over different
    /// alphabets is a programming error.
    #[must_use]
    pub fn product(&self, other: &Dfa, op: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product of DFAs over different alphabets"
        );
        let k = self.alphabet.len();
        let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut order: Vec<(usize, usize)> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert((self.start, other.start), 0);
        order.push((self.start, other.start));
        queue.push_back((self.start, other.start));
        let mut delta: Vec<Vec<usize>> = Vec::new();
        while let Some((p, q)) = queue.pop_front() {
            let mut row = Vec::with_capacity(k);
            for a in 0..k {
                let succ = (self.delta[p][a], other.delta[q][a]);
                let next = index.len();
                let id = *index.entry(succ).or_insert_with(|| {
                    order.push(succ);
                    queue.push_back(succ);
                    next
                });
                row.push(id);
            }
            delta.push(row);
        }
        let accepting = order
            .iter()
            .map(|&(p, q)| op(self.accepting[p], other.accepting[q]))
            .collect();
        Dfa {
            alphabet: self.alphabet.clone(),
            delta,
            start: 0,
            accepting,
        }
    }

    /// Intersection of languages.
    #[must_use]
    pub fn intersection(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Union of languages.
    #[must_use]
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Difference `L(self) \ L(other)`.
    #[must_use]
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    /// A shortest accepted word, or `None` if the language is empty.
    #[must_use]
    pub fn shortest_accepted(&self) -> Option<Word> {
        let mut parent: Vec<Option<(usize, Letter)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        seen[self.start] = true;
        queue.push_back(self.start);
        let mut hit = if self.accepting[self.start] {
            Some(self.start)
        } else {
            None
        };
        'bfs: while let Some(s) = queue.pop_front() {
            if hit.is_some() {
                break;
            }
            for a in 0..self.alphabet.len() {
                let t = self.delta[s][a];
                if !seen[t] {
                    seen[t] = true;
                    parent[t] = Some((s, self.alphabet.letter(a)));
                    if self.accepting[t] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut letters = Vec::new();
        while let Some((prev, l)) = parent[cur] {
            letters.push(l);
            cur = prev;
        }
        letters.reverse();
        Some(Word::from_letters(letters))
    }

    /// `true` iff the language is empty.
    #[must_use]
    pub fn is_language_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest word on which the two DFAs disagree, or `None` if they
    /// accept the same language.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    #[must_use]
    pub fn distinguishing_word(&self, other: &Dfa) -> Option<Word> {
        self.product(other, |a, b| a != b).shortest_accepted()
    }

    /// `true` iff both DFAs accept exactly the same language.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    #[must_use]
    pub fn equivalent_to(&self, other: &Dfa) -> bool {
        self.distinguishing_word(other).is_none()
    }

    /// The language-equivalent DFA with the minimum number of states
    /// (unreachable states removed, then partition refinement).
    ///
    /// ```
    /// use tvg_langs::{Alphabet, Dfa};
    /// // Two redundant copies of the "ends with a" automaton.
    /// let dfa = Dfa::new(
    ///     Alphabet::ab(),
    ///     vec![vec![1, 0], vec![1, 0], vec![1, 2]],
    ///     0,
    ///     vec![false, true, false],
    /// )?;
    /// assert_eq!(dfa.minimize().num_states(), 2);
    /// # Ok::<(), tvg_langs::DfaError>(())
    /// ```
    #[must_use]
    pub fn minimize(&self) -> Dfa {
        let trimmed = self.trim_unreachable();
        let n = trimmed.num_states();
        let k = trimmed.alphabet.len();
        // Moore partition refinement.
        let mut block: Vec<usize> = trimmed
            .accepting
            .iter()
            .map(|&acc| usize::from(acc))
            .collect();
        loop {
            let old_count = {
                let mut b = block.clone();
                b.sort_unstable();
                b.dedup();
                b.len()
            };
            let mut sig_index: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
            let mut next_block = vec![0usize; n];
            for s in 0..n {
                let sig: Vec<usize> = (0..k).map(|a| block[trimmed.delta[s][a]]).collect();
                let key = (block[s], sig);
                let fresh = sig_index.len();
                next_block[s] = *sig_index.entry(key).or_insert(fresh);
            }
            // Signatures include the old block id, so classes only ever
            // split; a fixed class count means the partition is stable.
            let new_count = sig_index.len();
            block = next_block;
            if new_count == old_count {
                break;
            }
        }
        // Renumber blocks densely in order of first occurrence.
        let mut remap: BTreeMap<usize, usize> = BTreeMap::new();
        for &b in &block {
            let fresh = remap.len();
            remap.entry(b).or_insert(fresh);
        }
        let m = remap.len();
        let mut delta = vec![vec![0usize; k]; m];
        let mut accepting = vec![false; m];
        for s in 0..n {
            let b = remap[&block[s]];
            accepting[b] = trimmed.accepting[s];
            for a in 0..k {
                delta[b][a] = remap[&block[trimmed.delta[s][a]]];
            }
        }
        Dfa {
            alphabet: trimmed.alphabet,
            delta,
            start: remap[&block[trimmed.start]],
            accepting,
        }
    }

    /// Removes states not reachable from the start state.
    #[must_use]
    pub fn trim_unreachable(&self) -> Dfa {
        let n = self.num_states();
        let k = self.alphabet.len();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[self.start] = true;
        queue.push_back(self.start);
        while let Some(s) = queue.pop_front() {
            for a in 0..k {
                let t = self.delta[s][a];
                if !seen[t] {
                    seen[t] = true;
                    queue.push_back(t);
                }
            }
        }
        let mut remap = vec![usize::MAX; n];
        let mut count = 0;
        for s in 0..n {
            if seen[s] {
                remap[s] = count;
                count += 1;
            }
        }
        let mut delta = Vec::with_capacity(count);
        let mut accepting = Vec::with_capacity(count);
        for s in 0..n {
            if seen[s] {
                delta.push((0..k).map(|a| remap[self.delta[s][a]]).collect());
                accepting.push(self.accepting[s]);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            delta,
            start: remap[self.start],
            accepting,
        }
    }

    /// All accepted words of length at most `max_len`, in shortlex order.
    ///
    /// Exponential in `max_len`; intended for the small cross-validation
    /// lengths used by the experiments (≤ 12 over 2–3 letters).
    #[must_use]
    pub fn language_upto(&self, max_len: usize) -> Vec<Word> {
        let mut out = Vec::new();
        // Frontier of (state, word) pairs of the current length.
        let mut frontier: Vec<(usize, Word)> = vec![(self.start, Word::empty())];
        if self.accepting[self.start] {
            out.push(Word::empty());
        }
        for _ in 0..max_len {
            let mut next = Vec::with_capacity(frontier.len() * self.alphabet.len());
            for (s, w) in &frontier {
                for a in 0..self.alphabet.len() {
                    let t = self.delta[*s][a];
                    let w2 = w.appended(self.alphabet.letter(a));
                    if self.accepting[t] {
                        out.push(w2.clone());
                    }
                    next.push((t, w2));
                }
            }
            frontier = next;
        }
        out
    }

    /// Number of accepted words of each length `0..=max_len`.
    ///
    /// Runs in `O(max_len · states · |Σ|)` via dynamic programming, so it is
    /// usable far beyond `language_upto`.
    #[must_use]
    pub fn count_words_per_length(&self, max_len: usize) -> Vec<u64> {
        let n = self.num_states();
        let mut dist = vec![0u64; n];
        dist[self.start] = 1;
        let mut counts = Vec::with_capacity(max_len + 1);
        for _ in 0..=max_len {
            counts.push(
                dist.iter()
                    .zip(&self.accepting)
                    .filter(|(_, &acc)| acc)
                    .map(|(&c, _)| c)
                    .sum(),
            );
            let mut next = vec![0u64; n];
            for s in 0..n {
                if dist[s] == 0 {
                    continue;
                }
                for a in 0..self.alphabet.len() {
                    next[self.delta[s][a]] = next[self.delta[s][a]].saturating_add(dist[s]);
                }
            }
            dist = next;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word;

    /// DFA over {a,b} accepting words with an even number of a's.
    fn even_as() -> Dfa {
        Dfa::new(
            Alphabet::ab(),
            vec![vec![1, 0], vec![0, 1]],
            0,
            vec![true, false],
        )
        .expect("valid dfa")
    }

    /// DFA over {a,b} accepting words ending in b.
    fn ends_b() -> Dfa {
        Dfa::new(
            Alphabet::ab(),
            vec![vec![0, 1], vec![0, 1]],
            0,
            vec![false, true],
        )
        .expect("valid dfa")
    }

    #[test]
    fn construction_validates_shape() {
        assert_eq!(
            Dfa::new(Alphabet::ab(), vec![], 0, vec![]),
            Err(DfaError::NoStates)
        );
        assert_eq!(
            Dfa::new(Alphabet::ab(), vec![vec![0, 0]], 5, vec![true]),
            Err(DfaError::BadStart(5))
        );
        assert_eq!(
            Dfa::new(Alphabet::ab(), vec![vec![0]], 0, vec![true]),
            Err(DfaError::BadRowWidth {
                state: 0,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            Dfa::new(Alphabet::ab(), vec![vec![0, 7]], 0, vec![true]),
            Err(DfaError::BadTarget {
                state: 0,
                letter: 1,
                target: 7
            })
        );
        assert_eq!(
            Dfa::new(Alphabet::ab(), vec![vec![0, 0]], 0, vec![]),
            Err(DfaError::AcceptingLengthMismatch {
                states: 1,
                accepting: 0
            })
        );
    }

    #[test]
    fn accepts_and_rejects() {
        let dfa = even_as();
        assert!(dfa.accepts(&Word::empty()));
        assert!(dfa.accepts(&word("aabb")));
        assert!(!dfa.accepts(&word("a")));
        assert!(!dfa.accepts(&word("bab")));
    }

    #[test]
    fn foreign_letters_rejected() {
        assert!(!even_as().accepts(&word("ac")));
        assert_eq!(even_as().run(&word("c")), None);
    }

    #[test]
    fn complement_flips() {
        let dfa = even_as();
        let comp = dfa.complement();
        for w in ["", "a", "ab", "aa", "bab", "aab"] {
            let w = word(w);
            assert_ne!(dfa.accepts(&w), comp.accepts(&w), "{w}");
        }
    }

    #[test]
    fn boolean_products() {
        let inter = even_as().intersection(&ends_b());
        assert!(inter.accepts(&word("aab")));
        assert!(!inter.accepts(&word("ab")));
        assert!(!inter.accepts(&word("aa")));

        let uni = even_as().union(&ends_b());
        assert!(uni.accepts(&word("ab")));
        assert!(uni.accepts(&word("aa")));
        assert!(!uni.accepts(&word("a")));

        let diff = even_as().difference(&ends_b());
        assert!(diff.accepts(&word("aa")));
        assert!(!diff.accepts(&word("aab")));
    }

    #[test]
    #[should_panic(expected = "different alphabets")]
    fn product_alphabet_mismatch_panics() {
        let other = Dfa::universal(Alphabet::abc());
        let _ = even_as().intersection(&other);
    }

    #[test]
    fn emptiness_and_witness() {
        assert!(Dfa::empty_language(Alphabet::ab()).is_language_empty());
        assert!(!Dfa::universal(Alphabet::ab()).is_language_empty());
        assert_eq!(
            Dfa::universal(Alphabet::ab()).shortest_accepted(),
            Some(Word::empty())
        );
        assert_eq!(ends_b().shortest_accepted(), Some(word("b")));
    }

    #[test]
    fn equivalence_and_distinguishing() {
        let a = even_as();
        let b = even_as().minimize();
        assert!(a.equivalent_to(&b));
        let w = a.distinguishing_word(&ends_b()).expect("must differ");
        assert_ne!(a.accepts(&w), ends_b().accepts(&w));
        // The witness is shortest: ε already distinguishes them.
        assert_eq!(w, Word::empty());
    }

    #[test]
    fn minimize_collapses_redundancy() {
        // Build even_as with duplicated states.
        let bloated = Dfa::new(
            Alphabet::ab(),
            vec![
                vec![1, 2], // 0 even (dup of 2's class)
                vec![0, 3], // 1 odd
                vec![3, 0], // 2 even
                vec![2, 1], // 3 odd
            ],
            0,
            vec![true, false, true, false],
        )
        .expect("valid");
        let min = bloated.minimize();
        assert_eq!(min.num_states(), 2);
        assert!(min.equivalent_to(&even_as()));
    }

    #[test]
    fn minimize_drops_unreachable() {
        let dfa = Dfa::new(
            Alphabet::ab(),
            vec![vec![0, 0], vec![1, 1]],
            0,
            vec![true, true],
        )
        .expect("valid");
        assert_eq!(dfa.minimize().num_states(), 1);
    }

    #[test]
    fn minimize_of_empty_language_is_single_state() {
        let min = Dfa::empty_language(Alphabet::ab()).minimize();
        assert_eq!(min.num_states(), 1);
        assert!(min.is_language_empty());
    }

    #[test]
    fn language_enumeration_shortlex() {
        let words = ends_b().language_upto(2);
        assert_eq!(words, vec![word("b"), word("ab"), word("bb")]);
    }

    #[test]
    fn count_matches_enumeration() {
        let dfa = even_as();
        let counts = dfa.count_words_per_length(8);
        for (len, &c) in counts.iter().enumerate() {
            let brute = dfa
                .language_upto(8)
                .into_iter()
                .filter(|w| w.len() == len)
                .count() as u64;
            assert_eq!(c, brute, "length {len}");
        }
    }

    #[test]
    fn universal_counts_all_words() {
        let counts = Dfa::universal(Alphabet::ab()).count_words_per_length(10);
        for (len, &c) in counts.iter().enumerate() {
            assert_eq!(c, 1u64 << len, "length {len}");
        }
    }
}
