//! Pumping-lemma certificates for regular languages.
//!
//! For a DFA with `n` states and any accepted word of length ≥ `n`, a
//! state repeats within the first `n` letters, yielding a decomposition
//! `w = xyz` with `|xy| ≤ n`, `|y| ≥ 1`, and `x yᵏ z ∈ L` for every `k`.
//! This module *produces* that decomposition — and, dually, checking that
//! no decomposition pumps is the classic route to non-regularity proofs
//! like the one Figure 1's `aⁿbⁿ` language needs.

use crate::{Dfa, Word};

/// A pumping decomposition `w = x · y · z` with the loop `y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PumpingDecomposition {
    /// Prefix before the loop.
    pub x: Word,
    /// The pumpable loop (nonempty).
    pub y: Word,
    /// Suffix after the loop.
    pub z: Word,
}

impl PumpingDecomposition {
    /// The word `x yᵏ z`.
    #[must_use]
    pub fn pumped(&self, k: usize) -> Word {
        let mut out = self.x.clone();
        for _ in 0..k {
            out.extend(self.y.iter());
        }
        out.extend(self.z.iter());
        out
    }
}

/// Finds a pumping decomposition of `w` for `dfa`, if `w` is accepted
/// and long enough (`|w| ≥` number of states).
///
/// The decomposition satisfies the pumping lemma: `|xy| ≤ n`, `|y| ≥ 1`,
/// and `dfa` accepts `x yᵏ z` for all `k ≥ 0`.
///
/// ```
/// use tvg_langs::{pumping::pump, word, Alphabet, Regex};
///
/// let dfa = Regex::parse("(ab)*", &Alphabet::ab())?
///     .to_nfa(&Alphabet::ab()).to_dfa().minimize();
/// let d = pump(&dfa, &word("ababab")).expect("long accepted word pumps");
/// assert!(dfa.accepts(&d.pumped(0)));
/// assert!(dfa.accepts(&d.pumped(5)));
/// # Ok::<(), tvg_langs::RegexError>(())
/// ```
#[must_use]
pub fn pump(dfa: &Dfa, w: &Word) -> Option<PumpingDecomposition> {
    if !dfa.accepts(w) || w.len() < dfa.num_states() {
        return None;
    }
    // Walk the run; the first repeated state bounds the loop.
    let mut seen: Vec<(usize, usize)> = vec![(dfa.start(), 0)]; // (state, position)
    let mut state = dfa.start();
    for (pos, letter) in w.iter().enumerate() {
        state = dfa.step(state, letter)?;
        if let Some(&(_, first)) = seen.iter().find(|&&(s, _)| s == state) {
            let letters: Vec<_> = w.iter().collect();
            return Some(PumpingDecomposition {
                x: Word::from_letters(letters[..first].to_vec()),
                y: Word::from_letters(letters[first..=pos].to_vec()),
                z: Word::from_letters(letters[pos + 1..].to_vec()),
            });
        }
        seen.push((state, pos + 1));
    }
    // Unreachable for |w| ≥ n by pigeonhole, but stay total.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{word, Alphabet, Regex};

    fn dfa_of(pattern: &str) -> Dfa {
        Regex::parse(pattern, &Alphabet::ab())
            .expect("parses")
            .to_nfa(&Alphabet::ab())
            .to_dfa()
            .minimize()
    }

    #[test]
    fn decomposition_satisfies_the_lemma() {
        let dfa = dfa_of("(a|b)*ab");
        let w = word("babab");
        let d = pump(&dfa, &w).expect("accepted and long enough");
        assert!(!d.y.is_empty());
        assert!(d.x.len() + d.y.len() <= dfa.num_states());
        assert_eq!(d.pumped(1), w);
        for k in [0usize, 2, 3, 7] {
            assert!(dfa.accepts(&d.pumped(k)), "k={k}");
        }
    }

    #[test]
    fn rejected_or_short_words_do_not_pump() {
        let dfa = dfa_of("(ab)*");
        assert_eq!(pump(&dfa, &word("aba")), None); // rejected
        assert_eq!(pump(&dfa, &word("ab")), None); // shorter than n
    }

    #[test]
    fn pumping_contradiction_for_anbn() {
        // The textbook non-regularity argument, executable: no regular
        // approximation of aⁿbⁿ can be exact — pumping any long member
        // must eventually leave the language.
        let is_anbn = |w: &Word| {
            let n = w.count_char('a');
            n >= 1
                && w.len() == 2 * n
                && w.iter().take(n).all(|l| l.as_char() == 'a')
                && w.iter().skip(n).all(|l| l.as_char() == 'b')
        };
        // Over-approximation a+b+ (regular) contains a⁵b⁵; pumping it
        // stays in a+b+ but leaves aⁿbⁿ for some k.
        let approx = dfa_of("a+b+");
        let w = word("aaaaabbbbb");
        let d = pump(&approx, &w).expect("pumps in the approximation");
        let escaped = (0..5).any(|k| {
            let pumped = d.pumped(k);
            approx.accepts(&pumped) && !is_anbn(&pumped)
        });
        assert!(escaped, "pumping must escape aⁿbⁿ while staying regular");
    }

    #[test]
    fn pumped_zero_removes_the_loop() {
        let dfa = dfa_of("a*");
        let d = pump(&dfa, &word("aaa")).expect("pumps");
        assert!(d.pumped(0).len() < 3);
        assert!(dfa.accepts(&d.pumped(0)));
    }
}
