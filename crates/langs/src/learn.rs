//! Angluin's L\* algorithm: active learning of a minimal DFA from a
//! membership oracle.
//!
//! Theorem 2.2 says every `L_wait(G)` is regular — so it is *learnable*:
//! point L\* at a TVG-automaton's waiting-acceptance as the membership
//! oracle and a bounded-equivalence check, and it reconstructs the
//! minimal DFA without ever looking at the graph. This gives the theorem
//! an operational face beyond the periodic-class compiler, and is how
//! experiment E3 treats TVGs whose schedules the compiler cannot
//! pattern-match.

use crate::sample::words_upto;
use crate::{Alphabet, Dfa, Word};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Errors from a learning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The round budget was exhausted before the equivalence oracle
    /// stopped producing counterexamples.
    RoundBudgetExhausted {
        /// Rounds performed.
        rounds: usize,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::RoundBudgetExhausted { rounds } => {
                write!(f, "no stable hypothesis after {rounds} learning rounds")
            }
        }
    }
}

impl Error for LearnError {}

/// Learns the minimal DFA of the language decided by `membership`,
/// using `equivalence` to test hypotheses (return a counterexample word,
/// or `None` to accept the hypothesis).
///
/// At most `max_rounds` hypothesis rounds are attempted.
///
/// # Errors
///
/// Returns [`LearnError::RoundBudgetExhausted`] if counterexamples keep
/// coming (e.g. the target is not regular, or the budget is too small).
///
/// ```
/// use tvg_langs::learn::{bounded_equivalence, learn_dfa};
/// use tvg_langs::{word, Alphabet};
///
/// // Learn "ends with b" from queries alone.
/// let sigma = Alphabet::ab();
/// let target = |w: &tvg_langs::Word| w.iter().last().map_or(false, |l| l.as_char() == 'b');
/// let dfa = learn_dfa(
///     &sigma,
///     target,
///     |hyp| bounded_equivalence(hyp, target, &sigma, 6),
///     16,
/// )?;
/// assert_eq!(dfa.num_states(), 2);
/// assert!(dfa.accepts(&word("aab")));
/// # Ok::<(), tvg_langs::learn::LearnError>(())
/// ```
pub fn learn_dfa<M, E>(
    alphabet: &Alphabet,
    mut membership: M,
    mut equivalence: E,
    max_rounds: usize,
) -> Result<Dfa, LearnError>
where
    M: FnMut(&Word) -> bool,
    E: FnMut(&Dfa) -> Option<Word>,
{
    let mut table = ObservationTable::new(alphabet.clone());
    table.fill(&mut membership);
    for rounds in 0..max_rounds {
        loop {
            if let Some(unclosed) = table.find_unclosed() {
                table.prefixes.insert(unclosed);
                table.fill(&mut membership);
                continue;
            }
            if let Some(suffix) = table.find_inconsistency() {
                table.suffixes.insert(suffix);
                table.fill(&mut membership);
                continue;
            }
            break;
        }
        let hypothesis = table.to_dfa();
        match equivalence(&hypothesis) {
            None => return Ok(hypothesis),
            Some(cex) => {
                // Add every prefix of the counterexample.
                for len in 0..=cex.len() {
                    table
                        .prefixes
                        .insert(Word::from_letters(cex.iter().take(len).collect()));
                }
                table.fill(&mut membership);
                let _ = rounds;
            }
        }
    }
    Err(LearnError::RoundBudgetExhausted { rounds: max_rounds })
}

/// Equivalence oracle by exhaustive comparison up to `max_len`: returns a
/// shortest word where `hypothesis` and `target` disagree.
pub fn bounded_equivalence<F: FnMut(&Word) -> bool>(
    hypothesis: &Dfa,
    mut target: F,
    alphabet: &Alphabet,
    max_len: usize,
) -> Option<Word> {
    words_upto(alphabet, max_len)
        .into_iter()
        .find(|w| hypothesis.accepts(w) != target(w))
}

/// The L\* observation table.
struct ObservationTable {
    alphabet: Alphabet,
    prefixes: BTreeSet<Word>,
    suffixes: BTreeSet<Word>,
    entries: BTreeMap<Word, bool>,
}

impl ObservationTable {
    fn new(alphabet: Alphabet) -> Self {
        ObservationTable {
            alphabet,
            prefixes: BTreeSet::from([Word::empty()]),
            suffixes: BTreeSet::from([Word::empty()]),
            entries: BTreeMap::new(),
        }
    }

    /// Queries the oracle for every missing `(prefix [+letter]) · suffix`.
    fn fill<M: FnMut(&Word) -> bool>(&mut self, membership: &mut M) {
        let mut rows: Vec<Word> = self.prefixes.iter().cloned().collect();
        for p in &self.prefixes {
            for a in self.alphabet.iter() {
                rows.push(p.appended(a));
            }
        }
        for row in rows {
            for e in &self.suffixes {
                let w = row.concat(e);
                if let std::collections::btree_map::Entry::Vacant(e) = self.entries.entry(w) {
                    let verdict = membership(e.key());
                    e.insert(verdict);
                }
            }
        }
    }

    fn row(&self, prefix: &Word) -> Vec<bool> {
        self.suffixes
            .iter()
            .map(|e| {
                *self
                    .entries
                    .get(&prefix.concat(e))
                    .expect("table filled before row access")
            })
            .collect()
    }

    /// A one-letter extension whose row matches no prefix row, if any.
    fn find_unclosed(&self) -> Option<Word> {
        let prefix_rows: BTreeSet<Vec<bool>> = self.prefixes.iter().map(|p| self.row(p)).collect();
        for p in &self.prefixes {
            for a in self.alphabet.iter() {
                let ext = p.appended(a);
                if !prefix_rows.contains(&self.row(&ext)) {
                    return Some(ext);
                }
            }
        }
        None
    }

    /// A distinguishing suffix witnessing an inconsistency (two equal
    /// prefix rows whose extensions differ), if any.
    fn find_inconsistency(&self) -> Option<Word> {
        let prefixes: Vec<&Word> = self.prefixes.iter().collect();
        for (i, p1) in prefixes.iter().enumerate() {
            for p2 in prefixes.iter().skip(i + 1) {
                if self.row(p1) != self.row(p2) {
                    continue;
                }
                for a in self.alphabet.iter() {
                    let r1 = self.row(&p1.appended(a));
                    let r2 = self.row(&p2.appended(a));
                    if let Some(k) = r1.iter().zip(&r2).position(|(x, y)| x != y) {
                        let e = self.suffixes.iter().nth(k).expect("index in range");
                        let mut suffix = Word::from_letters(vec![a]);
                        suffix.extend(e.iter());
                        return Some(suffix);
                    }
                }
            }
        }
        None
    }

    /// Builds the hypothesis DFA from a closed, consistent table.
    fn to_dfa(&self) -> Dfa {
        // States = distinct prefix rows, in order of first occurrence.
        let mut index: BTreeMap<Vec<bool>, usize> = BTreeMap::new();
        let mut representative: Vec<Word> = Vec::new();
        for p in &self.prefixes {
            let r = self.row(p);
            if let std::collections::btree_map::Entry::Vacant(e) = index.entry(r) {
                e.insert(representative.len());
                representative.push(p.clone());
            }
        }
        let n = representative.len();
        let k = self.alphabet.len();
        let mut delta = vec![vec![0usize; k]; n];
        let mut accepting = vec![false; n];
        for (s, rep) in representative.iter().enumerate() {
            accepting[s] = *self
                .entries
                .get(&rep.concat(&Word::empty()))
                .expect("filled");
            for (a, letter) in self.alphabet.iter().enumerate() {
                let succ_row = self.row(&rep.appended(letter));
                delta[s][a] = *index
                    .get(&succ_row)
                    .expect("closed table: extension rows are prefix rows");
            }
        }
        let start_row = self.row(&Word::empty());
        let start = index[&start_row];
        Dfa::new(self.alphabet.clone(), delta, start, accepting)
            .expect("observation table produces a structurally valid dfa")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{word, Regex};

    fn learn_regex(pattern: &str, check_len: usize) -> Dfa {
        let sigma = Alphabet::ab();
        let target = Regex::parse(pattern, &sigma)
            .expect("parses")
            .to_nfa(&sigma)
            .to_dfa()
            .minimize();
        let t2 = target.clone();
        learn_dfa(
            &sigma,
            move |w| target.accepts(w),
            move |hyp| bounded_equivalence(hyp, |w| t2.accepts(w), &Alphabet::ab(), check_len),
            32,
        )
        .expect("learnable")
    }

    #[test]
    fn learns_simple_languages_minimally() {
        for (pattern, expected_states) in
            [("(a|b)*ab", 3), ("a*b*", 3), ("(ab)*", 3), ("(a|b)*b", 2)]
        {
            let learned = learn_regex(pattern, 7);
            let sigma = Alphabet::ab();
            let target = Regex::parse(pattern, &sigma)
                .expect("parses")
                .to_nfa(&sigma)
                .to_dfa()
                .minimize();
            assert!(learned.equivalent_to(&target), "{pattern}");
            assert_eq!(learned.num_states(), expected_states, "{pattern}");
        }
    }

    #[test]
    fn learns_empty_and_universal() {
        let sigma = Alphabet::ab();
        let empty = learn_dfa(
            &sigma,
            |_| false,
            |hyp| bounded_equivalence(hyp, |_| false, &Alphabet::ab(), 4),
            8,
        )
        .expect("learnable");
        assert!(empty.is_language_empty());
        let universal = learn_dfa(
            &sigma,
            |_| true,
            |hyp| bounded_equivalence(hyp, |_| true, &Alphabet::ab(), 4),
            8,
        )
        .expect("learnable");
        assert!(universal.accepts(&Word::empty()));
        assert!(universal.accepts(&word("abba")));
    }

    #[test]
    fn nonregular_target_exhausts_budget() {
        // aⁿbⁿ has no DFA: with a deep enough equivalence check the
        // learner must keep finding counterexamples.
        let sigma = Alphabet::ab();
        let anbn = |w: &Word| {
            let n = w.count_char('a');
            n >= 1
                && w.len() == 2 * n
                && w.iter().take(n).all(|l| l.as_char() == 'a')
                && w.iter().skip(n).all(|l| l.as_char() == 'b')
        };
        let result = learn_dfa(
            &sigma,
            anbn,
            |hyp| bounded_equivalence(hyp, anbn, &Alphabet::ab(), 12),
            3,
        );
        assert_eq!(
            result.unwrap_err(),
            LearnError::RoundBudgetExhausted { rounds: 3 }
        );
    }

    #[test]
    fn learned_dfa_matches_oracle_everywhere_sampled() {
        let sigma = Alphabet::ab();
        // Parity of (count(a) - count(b)) mod 3 == 0.
        let target =
            |w: &Word| (w.count_char('a') as i64 - w.count_char('b') as i64).rem_euclid(3) == 0;
        let learned = learn_dfa(
            &sigma,
            target,
            |hyp| bounded_equivalence(hyp, target, &Alphabet::ab(), 8),
            32,
        )
        .expect("learnable");
        assert_eq!(learned.num_states(), 3);
        for w in words_upto(&sigma, 8) {
            assert_eq!(learned.accepts(&w), target(&w), "{w}");
        }
    }
}
