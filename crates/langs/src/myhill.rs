//! Myhill–Nerode residual analysis from a membership oracle.
//!
//! A language is regular iff it has finitely many residuals
//! (`u⁻¹L = {s : us ∈ L}`). Theorem 2.2 predicts that `L_wait(G)` has
//! finitely many residuals for *every* TVG `G`, while Theorem 2.1 exhibits
//! `L_nowait` languages whose residual count grows without bound. This
//! module measures residual counts empirically: it distinguishes prefixes
//! by their behavior on all suffixes up to a length budget, yielding a
//! *lower bound* on the true Myhill–Nerode index that saturates for
//! regular languages and keeps climbing for the non-regular witnesses —
//! the shape experiment E3 reports.

use crate::sample::words_upto;
use crate::{Alphabet, Word};
use std::collections::BTreeMap;

/// Result of a residual-counting pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualAnalysis {
    /// Number of pairwise-distinguishable prefixes found.
    pub residual_count: usize,
    /// One shortest representative prefix per residual class, in shortlex
    /// order of discovery.
    pub representatives: Vec<Word>,
}

/// Counts residual classes distinguishable with bounded evidence.
///
/// Prefixes up to `prefix_len` are mapped to their acceptance signature
/// over all suffixes up to `suffix_len`; distinct signatures witness
/// distinct residuals. The result is a lower bound on the Myhill–Nerode
/// index (exact once both budgets exceed the index for a regular
/// language).
///
/// Oracle calls: `O(|Σ|^prefix_len · |Σ|^suffix_len)` — keep budgets small.
///
/// ```
/// use tvg_langs::{myhill::residual_lower_bound, Alphabet};
/// // "ends in b" has exactly 2 residuals.
/// let r = residual_lower_bound(&Alphabet::ab(), 4, 2, |w| {
///     w.iter().last().map_or(false, |l| l.as_char() == 'b')
/// });
/// assert_eq!(r.residual_count, 2);
/// ```
pub fn residual_lower_bound<F: FnMut(&Word) -> bool>(
    alphabet: &Alphabet,
    prefix_len: usize,
    suffix_len: usize,
    mut oracle: F,
) -> ResidualAnalysis {
    let suffixes = words_upto(alphabet, suffix_len);
    let mut classes: BTreeMap<Vec<bool>, Word> = BTreeMap::new();
    for prefix in words_upto(alphabet, prefix_len) {
        let signature: Vec<bool> = suffixes.iter().map(|s| oracle(&prefix.concat(s))).collect();
        classes.entry(signature).or_insert(prefix);
    }
    let mut representatives: Vec<Word> = classes.into_values().collect();
    representatives.sort_by_key(|w| (w.len(), w.clone()));
    ResidualAnalysis {
        residual_count: representatives.len(),
        representatives,
    }
}

/// Residual counts for growing prefix budgets (fixed suffix budget).
///
/// A flat tail is regularity evidence; strictly increasing counts witness
/// non-regularity directly (each increase exhibits new residuals).
pub fn residual_growth<F: FnMut(&Word) -> bool>(
    alphabet: &Alphabet,
    max_prefix_len: usize,
    suffix_len: usize,
    mut oracle: F,
) -> Vec<usize> {
    (0..=max_prefix_len)
        .map(|p| residual_lower_bound(alphabet, p, suffix_len, &mut oracle).residual_count)
        .collect()
}

/// Returns `true` iff the residual count is already saturated: growing the
/// prefix budget from `prefix_len` to `prefix_len + 1` discovers no new
/// class.
pub fn residuals_saturated<F: FnMut(&Word) -> bool>(
    alphabet: &Alphabet,
    prefix_len: usize,
    suffix_len: usize,
    mut oracle: F,
) -> bool {
    let small = residual_lower_bound(alphabet, prefix_len, suffix_len, &mut oracle);
    let large = residual_lower_bound(alphabet, prefix_len + 1, suffix_len, &mut oracle);
    small.residual_count == large.residual_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dfa;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn regular_language_exact_index() {
        // Even number of a's: MN index 2.
        let r = residual_lower_bound(&sigma(), 4, 3, |w| w.count_char('a') % 2 == 0);
        assert_eq!(r.residual_count, 2);
        assert_eq!(r.representatives[0], Word::empty());
    }

    #[test]
    fn index_matches_minimal_dfa() {
        // L = words containing "ab": minimal DFA has 3 states.
        let dfa = crate::Regex::parse("(a|b)*ab(a|b)*", &sigma())
            .expect("parses")
            .to_nfa(&sigma())
            .to_dfa()
            .minimize();
        assert_eq!(dfa.num_states(), 3);
        let r = residual_lower_bound(&sigma(), 5, 3, |w| dfa.accepts(w));
        assert_eq!(r.residual_count, 3);
    }

    #[test]
    fn anbn_residuals_grow() {
        let anbn = |w: &Word| {
            let n = w.count_char('a');
            n >= 1
                && w.len() == 2 * n
                && w.iter().take(n).all(|l| l.as_char() == 'a')
                && w.iter().skip(n).all(|l| l.as_char() == 'b')
        };
        let growth = residual_growth(&sigma(), 6, 6, anbn);
        // Strictly more residuals at every prefix length: aⁱ are pairwise
        // distinguishable (only aⁱbⁱ completes them).
        for i in 1..growth.len() {
            assert!(
                growth[i] > growth[i - 1],
                "expected strict growth, got {growth:?}"
            );
        }
    }

    #[test]
    fn saturation_detects_regularity() {
        assert!(residuals_saturated(&sigma(), 4, 3, |w| w.count_char('a')
            % 2
            == 0));
        let anbn = |w: &Word| {
            let n = w.count_char('a');
            n >= 1
                && w.len() == 2 * n
                && w.to_string() == format!("{}{}", "a".repeat(n), "b".repeat(n))
        };
        assert!(!residuals_saturated(&sigma(), 4, 6, anbn));
    }

    #[test]
    fn representatives_distinguish_each_other() {
        let dfa = Dfa::new(
            sigma(),
            vec![vec![1, 0], vec![2, 1], vec![2, 2]],
            0,
            vec![false, false, true],
        )
        .expect("valid");
        let r = residual_lower_bound(&sigma(), 5, 4, |w| dfa.accepts(w));
        assert_eq!(r.residual_count, 3);
        // Every pair of representatives must have a distinguishing suffix.
        for (i, u) in r.representatives.iter().enumerate() {
            for v in r.representatives.iter().skip(i + 1) {
                let distinguished = words_upto(&sigma(), 4)
                    .iter()
                    .any(|s| dfa.accepts(&u.concat(s)) != dfa.accepts(&v.concat(s)));
                assert!(distinguished, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn zero_budgets_give_single_class() {
        let r = residual_lower_bound(&sigma(), 0, 0, |_| false);
        assert_eq!(r.residual_count, 1);
        assert_eq!(r.representatives, vec![Word::empty()]);
    }
}
