//! Nondeterministic finite automata with ε-transitions.
//!
//! The constructive fragment of Theorem 2.2 compiles a periodic
//! TVG-automaton to an NFA whose states are `(node, phase, wait-budget)`
//! triples and whose ε-transitions model *waiting* — this module provides
//! that target representation, plus Thompson combinators and the subset
//! construction used to compare languages exactly.

use crate::{Alphabet, Dfa, Word};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

/// Errors from assembling an [`Nfa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfaError {
    /// A state index is out of range.
    BadState(usize),
    /// A transition letter is not part of the alphabet.
    LetterNotInAlphabet(char),
    /// The NFAs being combined read different alphabets.
    AlphabetMismatch,
}

impl fmt::Display for NfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfaError::BadState(s) => write!(f, "state {s} is out of range"),
            NfaError::LetterNotInAlphabet(c) => write!(f, "letter {c:?} is not in the alphabet"),
            NfaError::AlphabetMismatch => write!(f, "nfas read different alphabets"),
        }
    }
}

impl Error for NfaError {}

/// A nondeterministic finite automaton with ε-transitions.
///
/// ```
/// use tvg_langs::{Alphabet, Nfa, word};
///
/// // (ab)* by hand.
/// let mut nfa = Nfa::new(Alphabet::ab(), 2);
/// nfa.add_start(0)?;
/// nfa.add_accepting(0)?;
/// nfa.add_transition(0, Some('a'), 1)?;
/// nfa.add_transition(1, Some('b'), 0)?;
/// assert!(nfa.accepts(&word("abab")));
/// assert!(!nfa.accepts(&word("aba")));
/// # Ok::<(), tvg_langs::NfaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    alphabet: Alphabet,
    /// `delta[s]` maps `Some(letter-index)` or `None` (ε) to successor sets.
    delta: Vec<BTreeMap<Option<usize>, BTreeSet<usize>>>,
    starts: BTreeSet<usize>,
    accepting: BTreeSet<usize>,
}

impl Nfa {
    /// Creates an NFA with `n_states` states and no transitions, start, or
    /// accepting states.
    #[must_use]
    pub fn new(alphabet: Alphabet, n_states: usize) -> Self {
        Nfa {
            alphabet,
            delta: vec![BTreeMap::new(); n_states],
            starts: BTreeSet::new(),
            accepting: BTreeSet::new(),
        }
    }

    /// The alphabet this NFA reads.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.delta.len()
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.delta.push(BTreeMap::new());
        self.delta.len() - 1
    }

    /// Marks `s` as a start state.
    ///
    /// # Errors
    ///
    /// Returns [`NfaError::BadState`] if `s` is out of range.
    pub fn add_start(&mut self, s: usize) -> Result<(), NfaError> {
        self.check_state(s)?;
        self.starts.insert(s);
        Ok(())
    }

    /// Marks `s` as accepting.
    ///
    /// # Errors
    ///
    /// Returns [`NfaError::BadState`] if `s` is out of range.
    pub fn add_accepting(&mut self, s: usize) -> Result<(), NfaError> {
        self.check_state(s)?;
        self.accepting.insert(s);
        Ok(())
    }

    /// Adds a transition on `label` (`None` for ε) from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns an error if either state is out of range or the letter is
    /// not in the alphabet.
    pub fn add_transition(
        &mut self,
        from: usize,
        label: Option<char>,
        to: usize,
    ) -> Result<(), NfaError> {
        self.check_state(from)?;
        self.check_state(to)?;
        let key = match label {
            None => None,
            Some(c) => Some(
                self.alphabet
                    .index_of_char(c)
                    .ok_or(NfaError::LetterNotInAlphabet(c))?,
            ),
        };
        self.delta[from].entry(key).or_default().insert(to);
        Ok(())
    }

    fn check_state(&self, s: usize) -> Result<(), NfaError> {
        if s < self.delta.len() {
            Ok(())
        } else {
            Err(NfaError::BadState(s))
        }
    }

    /// The start states.
    #[must_use]
    pub fn starts(&self) -> &BTreeSet<usize> {
        &self.starts
    }

    /// The accepting states.
    #[must_use]
    pub fn accepting(&self) -> &BTreeSet<usize> {
        &self.accepting
    }

    /// ε-closure of a set of states.
    #[must_use]
    pub fn epsilon_closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = set.clone();
        let mut queue: VecDeque<usize> = set.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            if let Some(succs) = self.delta[s].get(&None) {
                for &t in succs {
                    if closure.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        closure
    }

    /// One letter step (without ε-closure) from a set of states.
    #[must_use]
    pub fn step(&self, set: &BTreeSet<usize>, letter_index: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &s in set {
            if let Some(succs) = self.delta[s].get(&Some(letter_index)) {
                out.extend(succs.iter().copied());
            }
        }
        out
    }

    /// Returns `true` iff the NFA accepts `w`. Words using foreign letters
    /// are rejected.
    #[must_use]
    pub fn accepts(&self, w: &Word) -> bool {
        let mut cur = self.epsilon_closure(&self.starts);
        for l in w.iter() {
            let Some(a) = self.alphabet.index_of(l) else {
                return false;
            };
            cur = self.epsilon_closure(&self.step(&cur, a));
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|s| self.accepting.contains(s))
    }

    /// Subset construction: the equivalent total DFA.
    ///
    /// ```
    /// use tvg_langs::{Alphabet, Nfa, word};
    /// let mut nfa = Nfa::new(Alphabet::ab(), 2);
    /// nfa.add_start(0)?;
    /// nfa.add_accepting(1)?;
    /// nfa.add_transition(0, Some('a'), 0)?;
    /// nfa.add_transition(0, Some('b'), 0)?;
    /// nfa.add_transition(0, Some('a'), 1)?;
    /// let dfa = nfa.to_dfa();
    /// assert!(dfa.accepts(&word("ba")));
    /// assert!(!dfa.accepts(&word("ab")));
    /// # Ok::<(), tvg_langs::NfaError>(())
    /// ```
    #[must_use]
    pub fn to_dfa(&self) -> Dfa {
        let k = self.alphabet.len();
        let start_set = self.epsilon_closure(&self.starts);
        let mut index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut order: Vec<BTreeSet<usize>> = Vec::new();
        index.insert(start_set.clone(), 0);
        order.push(start_set);
        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        let mut delta: Vec<Vec<usize>> = Vec::new();
        while let Some(id) = queue.pop_front() {
            let set = order[id].clone();
            let mut row = Vec::with_capacity(k);
            for a in 0..k {
                let succ = self.epsilon_closure(&self.step(&set, a));
                let fresh = index.len();
                let sid = *index.entry(succ.clone()).or_insert_with(|| {
                    order.push(succ);
                    queue.push_back(fresh);
                    fresh
                });
                row.push(sid);
            }
            delta.push(row);
            if delta.len() < id + 1 {
                unreachable!("rows are pushed in queue order");
            }
        }
        let accepting = order
            .iter()
            .map(|set| set.iter().any(|s| self.accepting.contains(s)))
            .collect();
        Dfa::new(self.alphabet.clone(), delta, 0, accepting)
            .expect("subset construction produces a structurally valid dfa")
    }

    /// NFA accepting exactly `{w}`.
    #[must_use]
    pub fn literal(alphabet: Alphabet, w: &Word) -> Self {
        let mut nfa = Nfa::new(alphabet, w.len() + 1);
        nfa.starts.insert(0);
        nfa.accepting.insert(w.len());
        for (i, l) in w.iter().enumerate() {
            let a = nfa
                .alphabet
                .index_of(l)
                .expect("literal word must be over the alphabet");
            nfa.delta[i].entry(Some(a)).or_default().insert(i + 1);
        }
        nfa
    }

    /// NFA accepting the empty language.
    #[must_use]
    pub fn empty_language(alphabet: Alphabet) -> Self {
        let mut nfa = Nfa::new(alphabet, 1);
        nfa.starts.insert(0);
        nfa
    }

    /// Union of two NFAs (disjoint copy, shared alphabet).
    ///
    /// # Errors
    ///
    /// Returns [`NfaError::AlphabetMismatch`] if the alphabets differ.
    pub fn union(&self, other: &Nfa) -> Result<Nfa, NfaError> {
        if self.alphabet != other.alphabet {
            return Err(NfaError::AlphabetMismatch);
        }
        let offset = self.num_states();
        let mut out = self.clone();
        for (s, row) in other.delta.iter().enumerate() {
            let ns = out.add_state();
            debug_assert_eq!(ns, s + offset);
            for (key, succs) in row {
                out.delta[s + offset]
                    .entry(*key)
                    .or_default()
                    .extend(succs.iter().map(|t| t + offset));
            }
        }
        out.starts.extend(other.starts.iter().map(|s| s + offset));
        out.accepting
            .extend(other.accepting.iter().map(|s| s + offset));
        Ok(out)
    }

    /// Concatenation `L(self) · L(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`NfaError::AlphabetMismatch`] if the alphabets differ.
    pub fn concat(&self, other: &Nfa) -> Result<Nfa, NfaError> {
        if self.alphabet != other.alphabet {
            return Err(NfaError::AlphabetMismatch);
        }
        let offset = self.num_states();
        let mut out = self.clone();
        for (s, row) in other.delta.iter().enumerate() {
            out.add_state();
            for (key, succs) in row {
                out.delta[s + offset]
                    .entry(*key)
                    .or_default()
                    .extend(succs.iter().map(|t| t + offset));
            }
        }
        // ε from old accepting states into other's starts.
        for &f in &self.accepting {
            out.delta[f]
                .entry(None)
                .or_default()
                .extend(other.starts.iter().map(|s| s + offset));
        }
        out.accepting = other.accepting.iter().map(|s| s + offset).collect();
        Ok(out)
    }

    /// Kleene star `L(self)*`.
    #[must_use]
    pub fn star(&self) -> Nfa {
        let mut out = self.clone();
        let hub = out.add_state();
        for &s in &self.starts {
            out.delta[hub].entry(None).or_default().insert(s);
        }
        let old_accepting = out.accepting.clone();
        for &f in &old_accepting {
            out.delta[f].entry(None).or_default().insert(hub);
        }
        out.starts = BTreeSet::from([hub]);
        out.accepting.insert(hub);
        out
    }

    /// Reverses the language (arrows flipped, starts and accepting swapped).
    #[must_use]
    pub fn reverse(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet.clone(), self.num_states());
        for (s, row) in self.delta.iter().enumerate() {
            for (key, succs) in row {
                for &t in succs {
                    out.delta[t].entry(*key).or_default().insert(s);
                }
            }
        }
        out.starts = self.accepting.clone();
        out.accepting = self.starts.clone();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    /// NFA for "contains the factor ab".
    fn contains_ab() -> Nfa {
        let mut nfa = Nfa::new(ab(), 3);
        nfa.add_start(0).expect("ok");
        nfa.add_accepting(2).expect("ok");
        for c in ['a', 'b'] {
            nfa.add_transition(0, Some(c), 0).expect("ok");
            nfa.add_transition(2, Some(c), 2).expect("ok");
        }
        nfa.add_transition(0, Some('a'), 1).expect("ok");
        nfa.add_transition(1, Some('b'), 2).expect("ok");
        nfa
    }

    #[test]
    fn basic_acceptance() {
        let nfa = contains_ab();
        assert!(nfa.accepts(&word("ab")));
        assert!(nfa.accepts(&word("bbabb")));
        assert!(!nfa.accepts(&word("ba")));
        assert!(!nfa.accepts(&word("aaa")));
        assert!(!nfa.accepts(&Word::empty()));
    }

    #[test]
    fn epsilon_closure_chases_chains() {
        let mut nfa = Nfa::new(ab(), 4);
        nfa.add_transition(0, None, 1).expect("ok");
        nfa.add_transition(1, None, 2).expect("ok");
        nfa.add_transition(2, None, 0).expect("ok"); // cycle
        let closure = nfa.epsilon_closure(&BTreeSet::from([0]));
        assert_eq!(closure, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn construction_errors() {
        let mut nfa = Nfa::new(ab(), 2);
        assert_eq!(nfa.add_start(9), Err(NfaError::BadState(9)));
        assert_eq!(nfa.add_accepting(9), Err(NfaError::BadState(9)));
        assert_eq!(
            nfa.add_transition(0, Some('z'), 1),
            Err(NfaError::LetterNotInAlphabet('z'))
        );
        assert_eq!(
            nfa.add_transition(0, Some('a'), 9),
            Err(NfaError::BadState(9))
        );
    }

    #[test]
    fn subset_construction_preserves_language() {
        let nfa = contains_ab();
        let dfa = nfa.to_dfa();
        for w in crate::sample::words_upto(&ab(), 7) {
            assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "{w}");
        }
        assert_eq!(dfa.minimize().num_states(), 3);
    }

    #[test]
    fn literal_accepts_exactly_one_word() {
        let nfa = Nfa::literal(ab(), &word("aba"));
        assert!(nfa.accepts(&word("aba")));
        for w in crate::sample::words_upto(&ab(), 4) {
            assert_eq!(nfa.accepts(&w), w == word("aba"), "{w}");
        }
    }

    #[test]
    fn empty_language_accepts_nothing() {
        let nfa = Nfa::empty_language(ab());
        for w in crate::sample::words_upto(&ab(), 3) {
            assert!(!nfa.accepts(&w), "{w}");
        }
    }

    #[test]
    fn union_concat_star() {
        let a = Nfa::literal(ab(), &word("a"));
        let b = Nfa::literal(ab(), &word("b"));
        let a_or_b = a.union(&b).expect("same alphabet");
        assert!(a_or_b.accepts(&word("a")));
        assert!(a_or_b.accepts(&word("b")));
        assert!(!a_or_b.accepts(&word("ab")));

        let ab_cat = a.concat(&b).expect("same alphabet");
        assert!(ab_cat.accepts(&word("ab")));
        assert!(!ab_cat.accepts(&word("a")));
        assert!(!ab_cat.accepts(&word("ba")));

        let ab_star = ab_cat.star();
        assert!(ab_star.accepts(&Word::empty()));
        assert!(ab_star.accepts(&word("abab")));
        assert!(!ab_star.accepts(&word("aba")));
    }

    #[test]
    fn alphabet_mismatch_detected() {
        let a = Nfa::literal(ab(), &word("a"));
        let c = Nfa::literal(Alphabet::abc(), &word("c"));
        assert_eq!(a.union(&c), Err(NfaError::AlphabetMismatch));
        assert_eq!(a.concat(&c), Err(NfaError::AlphabetMismatch));
    }

    #[test]
    fn reverse_reverses() {
        let nfa = Nfa::literal(ab(), &word("aab"));
        let rev = nfa.reverse();
        assert!(rev.accepts(&word("baa")));
        assert!(!rev.accepts(&word("aab")));
    }

    #[test]
    fn star_of_empty_language_is_epsilon() {
        let star = Nfa::empty_language(ab()).star();
        assert!(star.accepts(&Word::empty()));
        assert!(!star.accepts(&word("a")));
    }
}
