//! Formal-language substrate for the *Waiting in Dynamic Networks*
//! reproduction.
//!
//! The paper measures the power of waiting in dynamic networks by the
//! *language class* a time-varying graph can express: Turing-complete
//! without waiting (Theorem 2.1), exactly regular with waiting
//! (Theorem 2.2). This crate supplies every formal-language object those
//! statements quantify over:
//!
//! * [`Letter`], [`Alphabet`], [`Word`] — the vocabulary journeys spell.
//! * [`Dfa`], [`Nfa`], [`Regex`] — the regular side of Theorem 2.2, with
//!   product constructions, minimization, and exact equivalence checking.
//! * [`synth`] — regex synthesis from DFAs (state elimination), so a
//!   waiting language can be *printed* as a regular expression.
//! * [`Grammar`] — context-free reference deciders (Earley recognizer) for
//!   the paper's `aⁿbⁿ` example.
//! * [`TuringMachine`] — the computable side of Theorem 2.1; real machines
//!   whose deciders get compiled into TVG schedules.
//! * [`counter`] — Minsky counter machines, a second Turing-complete
//!   model used as an independent Theorem 2.1 witness.
//! * [`wqo`] — Higman's subword embedding and regular closure
//!   constructions, the well-quasi-order machinery the Theorem 2.2 proof
//!   leans on.
//! * [`myhill`] — empirical Myhill–Nerode residual analysis used as
//!   regularity evidence in experiment E3.
//! * [`learn`] — Angluin's L\* active DFA learning; Theorem 2.2 made
//!   operational (regular ⟹ learnable from membership queries).
//! * [`sample`] — word enumeration for exhaustive bounded comparisons.
//!
//! # Examples
//!
//! ```
//! use tvg_langs::{Alphabet, Grammar, Regex, word};
//!
//! // The paper's headline language, recognized by a grammar...
//! let anbn = Grammar::anbn();
//! assert!(anbn.recognizes(&word("aaabbb")));
//!
//! // ...provably not regular: no DFA below any fixed size matches it, but
//! // regular approximations exist:
//! let approx = Regex::parse("a+b+", &Alphabet::ab())?;
//! let dfa = approx.to_nfa(&Alphabet::ab()).to_dfa().minimize();
//! assert!(dfa.accepts(&word("aaabbb")));
//! assert!(dfa.accepts(&word("aab"))); // ...but over-approximates
//! # Ok::<(), tvg_langs::RegexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
pub mod counter;
mod dfa;
mod grammar;
pub mod learn;
pub mod myhill;
mod nfa;
pub mod pumping;
mod regex;
pub mod sample;
pub mod synth;
mod turing;
pub mod wqo;

pub use alphabet::{word, Alphabet, AlphabetError, Letter, Word};
pub use dfa::{Dfa, DfaError};
pub use grammar::{Grammar, GrammarError};
pub use nfa::{Nfa, NfaError};
pub use regex::{Regex, RegexError};
pub use turing::{machines, Move, TmBuilder, TmError, TmOutcome, TuringMachine, BLANK};
