//! Minsky counter machines — a second machine model witnessing
//! "computable" in Theorem 2.1.
//!
//! Two-counter Minsky machines are Turing-complete; here they serve as an
//! independent decider family for the Theorem 2.1 experiments (the TVG
//! schedule can run *any* machine model — plugging in two of them guards
//! against the construction accidentally depending on one interpreter's
//! quirks).
//!
//! Programs operate on a vector of counters with increment and
//! decrement-or-jump; inputs enter through an encoding function from
//! words to initial counter values.

use crate::Word;
use std::error::Error;
use std::fmt;

/// A counter-machine instruction; `usize` operands are instruction
/// addresses, `Reg` values index counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `counters[r] += 1; goto next`.
    Inc {
        /// Counter to increment.
        r: usize,
        /// Next instruction address.
        next: usize,
    },
    /// If `counters[r] > 0`: decrement and `goto next`; else `goto on_zero`.
    Dec {
        /// Counter to test-and-decrement.
        r: usize,
        /// Address when the counter was positive.
        next: usize,
        /// Address when the counter was zero.
        on_zero: usize,
    },
    /// Halt and accept.
    Accept,
    /// Halt and reject.
    Reject,
}

/// Errors from assembling a [`CounterMachine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterError {
    /// An instruction jumps to a missing address.
    BadAddress {
        /// Instruction index containing the bad jump.
        at: usize,
        /// The missing target.
        target: usize,
    },
    /// An instruction uses a counter index outside the declared arity.
    BadRegister {
        /// Instruction index containing the bad register.
        at: usize,
        /// The out-of-range register.
        register: usize,
    },
    /// The program is empty.
    Empty,
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::BadAddress { at, target } => {
                write!(f, "instruction {at} jumps to missing address {target}")
            }
            CounterError::BadRegister { at, register } => {
                write!(f, "instruction {at} uses out-of-range counter {register}")
            }
            CounterError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl Error for CounterError {}

/// Outcome of a bounded counter-machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOutcome {
    /// Halted in `Accept`.
    Accepted,
    /// Halted in `Reject`.
    Rejected,
    /// Fuel exhausted first.
    OutOfFuel,
}

/// A Minsky counter machine: a program over `num_counters` counters.
///
/// ```
/// use tvg_langs::counter::{CounterMachine, CounterOutcome, Instr};
///
/// // Accept iff counter0 == counter1 (the classic equality program).
/// let eq = CounterMachine::new(2, vec![
///     Instr::Dec { r: 0, next: 1, on_zero: 2 }, // 0: c0-- or check c1
///     Instr::Dec { r: 1, next: 0, on_zero: 4 }, // 1: c1-- and loop, else reject
///     Instr::Dec { r: 1, next: 4, on_zero: 3 }, // 2: c0 empty: c1 must be too
///     Instr::Accept,                            // 3
///     Instr::Reject,                            // 4
/// ])?;
/// assert_eq!(eq.run(&[3, 3], 100), CounterOutcome::Accepted);
/// assert_eq!(eq.run(&[3, 4], 100), CounterOutcome::Rejected);
/// # Ok::<(), tvg_langs::counter::CounterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CounterMachine {
    num_counters: usize,
    program: Vec<Instr>,
}

impl CounterMachine {
    /// Assembles a program after validating its jumps and registers.
    ///
    /// # Errors
    ///
    /// Returns a [`CounterError`] locating the first malformed
    /// instruction.
    pub fn new(num_counters: usize, program: Vec<Instr>) -> Result<Self, CounterError> {
        if program.is_empty() {
            return Err(CounterError::Empty);
        }
        let n = program.len();
        for (at, ins) in program.iter().enumerate() {
            let (targets, regs): (Vec<usize>, Vec<usize>) = match *ins {
                Instr::Inc { r, next } => (vec![next], vec![r]),
                Instr::Dec { r, next, on_zero } => (vec![next, on_zero], vec![r]),
                Instr::Accept | Instr::Reject => (vec![], vec![]),
            };
            for t in targets {
                if t >= n {
                    return Err(CounterError::BadAddress { at, target: t });
                }
            }
            for r in regs {
                if r >= num_counters {
                    return Err(CounterError::BadRegister { at, register: r });
                }
            }
        }
        Ok(CounterMachine {
            num_counters,
            program,
        })
    }

    /// Number of counters the program uses.
    #[must_use]
    pub fn num_counters(&self) -> usize {
        self.num_counters
    }

    /// Program length in instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// `true` iff the program has no instructions (never, post-`new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }

    /// Runs from instruction 0 with the given initial counters, for at
    /// most `fuel` steps. Missing initial counters default to 0.
    #[must_use]
    pub fn run(&self, initial: &[u64], fuel: usize) -> CounterOutcome {
        let mut counters = vec![0u64; self.num_counters];
        for (c, &v) in counters.iter_mut().zip(initial) {
            *c = v;
        }
        let mut pc = 0usize;
        for _ in 0..fuel {
            match self.program[pc] {
                Instr::Inc { r, next } => {
                    counters[r] += 1;
                    pc = next;
                }
                Instr::Dec { r, next, on_zero } => {
                    if counters[r] > 0 {
                        counters[r] -= 1;
                        pc = next;
                    } else {
                        pc = on_zero;
                    }
                }
                Instr::Accept => return CounterOutcome::Accepted,
                Instr::Reject => return CounterOutcome::Rejected,
            }
        }
        CounterOutcome::OutOfFuel
    }

    /// Membership decider through a word-to-counters encoding.
    #[must_use]
    pub fn decide_encoded<F: Fn(&Word) -> Vec<u64>>(
        &self,
        encode: F,
        w: &Word,
        fuel: usize,
    ) -> bool {
        self.run(&encode(w), fuel) == CounterOutcome::Accepted
    }
}

/// Stock programs used by tests and the Theorem 2.1 experiments.
pub mod programs {
    use super::{CounterMachine, Instr};

    /// Accepts iff counter 0 equals counter 1.
    #[must_use]
    pub fn equal() -> CounterMachine {
        CounterMachine::new(
            2,
            vec![
                Instr::Dec {
                    r: 0,
                    next: 1,
                    on_zero: 2,
                },
                Instr::Dec {
                    r: 1,
                    next: 0,
                    on_zero: 4,
                },
                Instr::Dec {
                    r: 1,
                    next: 4,
                    on_zero: 3,
                },
                Instr::Accept,
                Instr::Reject,
            ],
        )
        .expect("static program is valid")
    }

    /// Accepts iff counter 0 is even.
    #[must_use]
    pub fn even() -> CounterMachine {
        CounterMachine::new(
            1,
            vec![
                Instr::Dec {
                    r: 0,
                    next: 1,
                    on_zero: 2,
                }, // 0
                Instr::Dec {
                    r: 0,
                    next: 0,
                    on_zero: 3,
                }, // 1
                Instr::Accept, // 2
                Instr::Reject, // 3
            ],
        )
        .expect("static program is valid")
    }

    /// Accepts iff counter 0 equals 2 · counter 1.
    #[must_use]
    pub fn double() -> CounterMachine {
        CounterMachine::new(
            2,
            vec![
                Instr::Dec {
                    r: 1,
                    next: 1,
                    on_zero: 3,
                }, // 0: take one from c1…
                Instr::Dec {
                    r: 0,
                    next: 2,
                    on_zero: 6,
                }, // 1: …remove two from c0
                Instr::Dec {
                    r: 0,
                    next: 0,
                    on_zero: 6,
                }, // 2
                Instr::Dec {
                    r: 0,
                    next: 6,
                    on_zero: 4,
                }, // 3: c1 empty: c0 must be too
                Instr::Accept, // 4
                Instr::Reject, // 5 (unused, kept for clarity)
                Instr::Reject, // 6
            ],
        )
        .expect("static program is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::programs;
    use super::*;
    use crate::sample::words_upto;
    use crate::Alphabet;

    #[test]
    fn equality_program_is_correct() {
        let eq = programs::equal();
        for a in 0u64..8 {
            for b in 0u64..8 {
                let expected = if a == b {
                    CounterOutcome::Accepted
                } else {
                    CounterOutcome::Rejected
                };
                assert_eq!(eq.run(&[a, b], 1_000), expected, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn even_program_is_correct() {
        let even = programs::even();
        for n in 0u64..20 {
            assert_eq!(
                even.run(&[n], 1_000) == CounterOutcome::Accepted,
                n % 2 == 0,
                "{n}"
            );
        }
    }

    #[test]
    fn double_program_is_correct() {
        let d = programs::double();
        for a in 0u64..12 {
            for b in 0u64..6 {
                assert_eq!(
                    d.run(&[a, b], 1_000) == CounterOutcome::Accepted,
                    a == 2 * b,
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn anbn_via_counters_and_shape_check() {
        // {aⁿbⁿ} = shape a*b* (regular) ∩ equal counts (counter machine).
        let eq = programs::equal();
        let shape = crate::Regex::parse("a*b*", &Alphabet::ab())
            .expect("parses")
            .to_nfa(&Alphabet::ab())
            .to_dfa();
        let decide = |w: &Word| {
            w.len() >= 2
                && shape.accepts(w)
                && eq.decide_encoded(
                    |w| vec![w.count_char('a') as u64, w.count_char('b') as u64],
                    w,
                    10_000,
                )
        };
        for w in words_upto(&Alphabet::ab(), 9) {
            let n = w.count_char('a');
            let expected = n >= 1
                && w.len() == 2 * n
                && w.iter().take(n).all(|l| l.as_char() == 'a')
                && w.iter().skip(n).all(|l| l.as_char() == 'b');
            assert_eq!(decide(&w), expected, "{w}");
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            CounterMachine::new(1, vec![]).unwrap_err(),
            CounterError::Empty
        );
        assert_eq!(
            CounterMachine::new(1, vec![Instr::Inc { r: 0, next: 7 }]).unwrap_err(),
            CounterError::BadAddress { at: 0, target: 7 }
        );
        assert_eq!(
            CounterMachine::new(
                1,
                vec![Instr::Dec {
                    r: 3,
                    next: 0,
                    on_zero: 0
                }]
            )
            .unwrap_err(),
            CounterError::BadRegister { at: 0, register: 3 }
        );
    }

    #[test]
    fn fuel_exhaustion_detected() {
        // Tight loop: Inc forever.
        let spin = CounterMachine::new(1, vec![Instr::Inc { r: 0, next: 0 }]).expect("valid");
        assert_eq!(spin.run(&[], 100), CounterOutcome::OutOfFuel);
    }

    #[test]
    fn missing_initial_counters_default_to_zero() {
        let eq = programs::equal();
        assert_eq!(eq.run(&[], 100), CounterOutcome::Accepted); // 0 == 0
        assert_eq!(eq.run(&[1], 100), CounterOutcome::Rejected); // 1 != 0
    }
}
