//! Deterministic single-tape Turing machines.
//!
//! Theorem 2.1 says every *computable* language is the no-wait language of
//! some TVG. The environment's presence function carries the computation,
//! and "computable" is witnessed here by actual machines: the
//! `tvg-expressivity` crate plugs [`TuringMachine::decide`] into its
//! Theorem-2.1 construction so that the resulting TVG's schedule literally
//! runs a Turing machine.

use crate::Word;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Head movement of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// Outcome of running a machine with bounded fuel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmOutcome {
    /// The machine reached its accept state.
    Accepted,
    /// The machine reached its reject state or had no applicable transition.
    Rejected,
    /// The step budget was exhausted before halting.
    OutOfFuel,
}

/// Errors from assembling a [`TuringMachine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmError {
    /// A rule references a state name that was never declared.
    UnknownState(String),
    /// Two rules share the same (state, symbol) trigger.
    DuplicateRule {
        /// State name of the duplicated trigger.
        state: String,
        /// Tape symbol of the duplicated trigger.
        symbol: char,
    },
    /// The tape symbol is not printable ASCII or the blank `_`.
    BadSymbol(char),
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmError::UnknownState(s) => write!(f, "unknown state {s:?}"),
            TmError::DuplicateRule { state, symbol } => {
                write!(f, "duplicate rule for state {state:?} on symbol {symbol:?}")
            }
            TmError::BadSymbol(c) => write!(f, "tape symbol {c:?} is not printable ascii or '_'"),
        }
    }
}

impl Error for TmError {}

/// The blank tape symbol.
pub const BLANK: char = '_';

/// Builder for [`TuringMachine`]; states are referred to by name.
///
/// ```
/// use tvg_langs::{TmBuilder, Move, word};
///
/// // Accept words of even length.
/// let tm = TmBuilder::new("even")
///     .rule("even", 'a', "odd", 'a', Move::Right)?
///     .rule("odd", 'a', "even", 'a', Move::Right)?
///     .rule("even", '_', "accept", '_', Move::Stay)?
///     .accept_on("accept")
///     .build()?;
/// assert!(tm.decide(&word("aa"), 1_000));
/// assert!(!tm.decide(&word("aaa"), 1_000));
/// # Ok::<(), tvg_langs::TmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TmBuilder {
    start: String,
    accept: String,
    rules: Vec<(String, char, String, char, Move)>,
}

impl TmBuilder {
    /// Starts building a machine whose initial state is `start`.
    #[must_use]
    pub fn new(start: &str) -> Self {
        TmBuilder {
            start: start.to_string(),
            accept: "accept".to_string(),
            rules: Vec::new(),
        }
    }

    /// Adds the transition `(state, read) -> (next, write, move)`.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::BadSymbol`] for non-printable tape symbols.
    pub fn rule(
        mut self,
        state: &str,
        read: char,
        next: &str,
        write: char,
        mv: Move,
    ) -> Result<Self, TmError> {
        for c in [read, write] {
            if c != BLANK && !c.is_ascii_graphic() {
                return Err(TmError::BadSymbol(c));
            }
        }
        self.rules
            .push((state.to_string(), read, next.to_string(), write, mv));
        Ok(self)
    }

    /// Names the accepting state (default `"accept"`).
    #[must_use]
    pub fn accept_on(mut self, state: &str) -> Self {
        self.accept = state.to_string();
        self
    }

    /// Finalizes the machine.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::DuplicateRule`] if two rules share a trigger.
    pub fn build(self) -> Result<TuringMachine, TmError> {
        let mut names: Vec<String> = Vec::new();
        let intern = |name: &str, names: &mut Vec<String>| -> usize {
            if let Some(i) = names.iter().position(|n| n == name) {
                i
            } else {
                names.push(name.to_string());
                names.len() - 1
            }
        };
        let start = intern(&self.start, &mut names);
        let accept = intern(&self.accept, &mut names);
        let mut delta = HashMap::new();
        for (state, read, next, write, mv) in &self.rules {
            let s = intern(state, &mut names);
            let t = intern(next, &mut names);
            if delta.insert((s, *read), (t, *write, *mv)).is_some() {
                return Err(TmError::DuplicateRule {
                    state: state.clone(),
                    symbol: *read,
                });
            }
        }
        Ok(TuringMachine {
            names,
            start,
            accept,
            delta,
        })
    }
}

/// A deterministic single-tape Turing machine.
///
/// Missing transitions reject (the usual convention), so machines only
/// spell out their accepting paths.
#[derive(Debug, Clone)]
pub struct TuringMachine {
    names: Vec<String>,
    start: usize,
    accept: usize,
    delta: HashMap<(usize, char), (usize, char, Move)>,
}

impl TuringMachine {
    /// Number of (reachable-by-name) states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// Number of transition rules.
    #[must_use]
    pub fn num_rules(&self) -> usize {
        self.delta.len()
    }

    /// Runs on `input` with at most `fuel` steps.
    #[must_use]
    pub fn run(&self, input: &Word, fuel: usize) -> TmOutcome {
        let mut tape: VecDeque<char> = input.iter().map(|l| l.as_char()).collect();
        if tape.is_empty() {
            tape.push_back(BLANK);
        }
        let mut head: usize = 0;
        let mut state = self.start;
        for _ in 0..fuel {
            if state == self.accept {
                return TmOutcome::Accepted;
            }
            let read = tape[head];
            let Some(&(next, write, mv)) = self.delta.get(&(state, read)) else {
                return TmOutcome::Rejected;
            };
            tape[head] = write;
            state = next;
            match mv {
                Move::Stay => {}
                Move::Right => {
                    head += 1;
                    if head == tape.len() {
                        tape.push_back(BLANK);
                    }
                }
                Move::Left => {
                    if head == 0 {
                        tape.push_front(BLANK);
                    } else {
                        head -= 1;
                    }
                }
            }
        }
        if state == self.accept {
            TmOutcome::Accepted
        } else {
            TmOutcome::OutOfFuel
        }
    }

    /// Membership as a plain boolean: out-of-fuel counts as rejection.
    ///
    /// The machines in [`machines`] halt on every input well within the
    /// fuel budgets the experiments use, so this is a total decider there.
    #[must_use]
    pub fn decide(&self, input: &Word, fuel: usize) -> bool {
        self.run(input, fuel) == TmOutcome::Accepted
    }
}

/// A library of concrete machines used by the Theorem-2.1 experiments.
pub mod machines {
    use super::{Move, TmBuilder, TuringMachine};

    /// Decider for `{aⁿbⁿ : n ≥ 1}` — the language of the paper's Figure 1.
    #[must_use]
    pub fn anbn() -> TuringMachine {
        TmBuilder::new("q0")
            // Mark a leading 'a', find the matching 'b'.
            .and_rule("q0", 'a', "q1", 'X', Move::Right)
            .and_rule("q0", 'Y', "q3", 'Y', Move::Right)
            .and_rule("q1", 'a', "q1", 'a', Move::Right)
            .and_rule("q1", 'Y', "q1", 'Y', Move::Right)
            .and_rule("q1", 'b', "q2", 'Y', Move::Left)
            .and_rule("q2", 'a', "q2", 'a', Move::Left)
            .and_rule("q2", 'Y', "q2", 'Y', Move::Left)
            .and_rule("q2", 'X', "q0", 'X', Move::Right)
            // Verification: only Y's remain.
            .and_rule("q3", 'Y', "q3", 'Y', Move::Right)
            .and_rule("q3", '_', "accept", '_', Move::Stay)
            .build()
            .expect("static machine is valid")
    }

    /// Decider for the context-sensitive `{aⁿbⁿcⁿ : n ≥ 1}`.
    #[must_use]
    pub fn anbncn() -> TuringMachine {
        TmBuilder::new("q0")
            .and_rule("q0", 'a', "q1", 'X', Move::Right)
            .and_rule("q0", 'Y', "q4", 'Y', Move::Right)
            .and_rule("q1", 'a', "q1", 'a', Move::Right)
            .and_rule("q1", 'Y', "q1", 'Y', Move::Right)
            .and_rule("q1", 'b', "q2", 'Y', Move::Right)
            .and_rule("q2", 'b', "q2", 'b', Move::Right)
            .and_rule("q2", 'Z', "q2", 'Z', Move::Right)
            .and_rule("q2", 'c', "q3", 'Z', Move::Left)
            .and_rule("q3", 'a', "q3", 'a', Move::Left)
            .and_rule("q3", 'b', "q3", 'b', Move::Left)
            .and_rule("q3", 'Y', "q3", 'Y', Move::Left)
            .and_rule("q3", 'Z', "q3", 'Z', Move::Left)
            .and_rule("q3", 'X', "q0", 'X', Move::Right)
            .and_rule("q4", 'Y', "q4", 'Y', Move::Right)
            .and_rule("q4", 'Z', "q4", 'Z', Move::Right)
            .and_rule("q4", '_', "accept", '_', Move::Stay)
            .build()
            .expect("static machine is valid")
    }

    /// Decider for palindromes (any length, including ε) over `{a, b}`.
    #[must_use]
    pub fn palindrome() -> TuringMachine {
        TmBuilder::new("q0")
            .and_rule("q0", '_', "accept", '_', Move::Stay)
            .and_rule("q0", 'a', "ra", '_', Move::Right)
            .and_rule("q0", 'b', "rb", '_', Move::Right)
            // Scan right to the last symbol.
            .and_rule("ra", 'a', "ra", 'a', Move::Right)
            .and_rule("ra", 'b', "ra", 'b', Move::Right)
            .and_rule("ra", '_', "ca", '_', Move::Left)
            .and_rule("rb", 'a', "rb", 'a', Move::Right)
            .and_rule("rb", 'b', "rb", 'b', Move::Right)
            .and_rule("rb", '_', "cb", '_', Move::Left)
            // Check it matches the erased first symbol.
            .and_rule("ca", 'a', "back", '_', Move::Left)
            .and_rule("ca", '_', "accept", '_', Move::Stay)
            .and_rule("cb", 'b', "back", '_', Move::Left)
            .and_rule("cb", '_', "accept", '_', Move::Stay)
            // Return to the left end.
            .and_rule("back", 'a', "back", 'a', Move::Left)
            .and_rule("back", 'b', "back", 'b', Move::Left)
            .and_rule("back", '_', "q0", '_', Move::Right)
            .build()
            .expect("static machine is valid")
    }

    impl TmBuilder {
        /// Infallible [`TmBuilder::rule`] for the static machines above,
        /// whose symbols are known-good.
        #[must_use]
        pub(crate) fn and_rule(
            self,
            state: &str,
            read: char,
            next: &str,
            write: char,
            mv: Move,
        ) -> Self {
            self.rule(state, read, next, write, mv)
                .expect("static machine symbols are printable")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::machines;
    use super::*;
    use crate::sample::words_upto;
    use crate::{word, Alphabet};

    const FUEL: usize = 100_000;

    #[test]
    fn anbn_matches_reference_exhaustively() {
        let tm = machines::anbn();
        for w in words_upto(&Alphabet::ab(), 10) {
            let n = w.count_char('a');
            let expected = n >= 1
                && w.len() == 2 * n
                && w.iter().take(n).all(|l| l.as_char() == 'a')
                && w.iter().skip(n).all(|l| l.as_char() == 'b');
            assert_eq!(tm.decide(&w, FUEL), expected, "{w}");
        }
    }

    #[test]
    fn anbncn_matches_reference_exhaustively() {
        let tm = machines::anbncn();
        for w in words_upto(&Alphabet::abc(), 9) {
            let n = w.count_char('a');
            let expected = n >= 1
                && w.len() == 3 * n
                && w.iter().take(n).all(|l| l.as_char() == 'a')
                && w.iter().skip(n).take(n).all(|l| l.as_char() == 'b')
                && w.iter().skip(2 * n).all(|l| l.as_char() == 'c');
            assert_eq!(tm.decide(&w, FUEL), expected, "{w}");
        }
    }

    #[test]
    fn palindrome_matches_reference_exhaustively() {
        let tm = machines::palindrome();
        for w in words_upto(&Alphabet::ab(), 9) {
            let expected = w == w.reversed();
            assert_eq!(tm.decide(&w, FUEL), expected, "{w}");
        }
    }

    #[test]
    fn long_inputs_accepted() {
        let tm = machines::anbn();
        let w = word(&format!("{}{}", "a".repeat(60), "b".repeat(60)));
        assert!(tm.decide(&w, 1_000_000));
        let w_bad = word(&format!("{}{}", "a".repeat(60), "b".repeat(59)));
        assert!(!tm.decide(&w_bad, 1_000_000));
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let tm = machines::anbn();
        let w = word("aaaaabbbbb");
        assert_eq!(tm.run(&w, 3), TmOutcome::OutOfFuel);
        assert_eq!(tm.run(&w, FUEL), TmOutcome::Accepted);
    }

    #[test]
    fn missing_transition_rejects() {
        let tm = TmBuilder::new("s").build().expect("valid");
        assert_eq!(tm.run(&word("a"), 10), TmOutcome::Rejected);
    }

    #[test]
    fn duplicate_rule_rejected_at_build() {
        let err = TmBuilder::new("s")
            .rule("s", 'a', "s", 'a', Move::Right)
            .expect("ok")
            .rule("s", 'a', "t", 'b', Move::Left)
            .expect("ok")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TmError::DuplicateRule {
                state: "s".to_string(),
                symbol: 'a'
            }
        );
    }

    #[test]
    fn bad_symbol_rejected() {
        let err = TmBuilder::new("s")
            .rule("s", 'é', "s", 'a', Move::Stay)
            .unwrap_err();
        assert_eq!(err, TmError::BadSymbol('é'));
    }

    #[test]
    fn empty_word_handling() {
        assert!(machines::palindrome().decide(&Word::empty(), FUEL));
        assert!(!machines::anbn().decide(&Word::empty(), FUEL));
        assert!(!machines::anbncn().decide(&Word::empty(), FUEL));
    }

    #[test]
    fn machine_sizes_reported() {
        let tm = machines::anbncn();
        assert!(tm.num_states() >= 6);
        assert!(tm.num_rules() >= 15);
    }
}
