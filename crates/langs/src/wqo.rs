//! Well-quasi-order machinery on words (Higman's subword embedding).
//!
//! The proof of Theorem 2.2 introduces a quasi-order on words "based upon
//! the possibility of inclusion for corresponding journeys" and shows it is
//! a well-quasi-order, then applies the Harju–Ilie regularity criterion
//! (closure under a wqo implies regularity). The archetype of such orders —
//! and the engine behind Higman's lemma the paper contrasts against — is
//! the *scattered subword embedding* implemented here, together with the
//! constructions the criterion relies on: upward/downward closures of
//! finite languages are regular, built explicitly as NFAs.

use crate::{Alphabet, Nfa, Word};

/// Returns `true` iff `u` embeds into `w` as a scattered subword
/// (Higman's order): `u ⊑ w`.
///
/// ```
/// use tvg_langs::{wqo::is_subword, word};
/// assert!(is_subword(&word("ab"), &word("aabb")));
/// assert!(is_subword(&word("ace"), &word("abcde")));
/// assert!(!is_subword(&word("ba"), &word("aab")));
/// ```
#[must_use]
pub fn is_subword(u: &Word, w: &Word) -> bool {
    let mut it = w.iter();
    'outer: for needle in u.iter() {
        for hay in it.by_ref() {
            if hay == needle {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// The ⊑-minimal elements of a finite set of words.
///
/// These generate the same upward closure as the full set; by Higman's
/// lemma every upward-closed language is the closure of finitely many
/// minimal words, which is why closures are regular.
#[must_use]
pub fn minimal_elements(words: &[Word]) -> Vec<Word> {
    let mut out: Vec<Word> = Vec::new();
    for (i, w) in words.iter().enumerate() {
        let dominated = words.iter().enumerate().any(|(j, u)| {
            if i == j {
                return false;
            }
            if u == w {
                // Keep only the first occurrence of duplicates.
                return j < i;
            }
            is_subword(u, w)
        });
        if !dominated {
            out.push(w.clone());
        }
    }
    out
}

/// Returns `true` iff no two distinct words in the slice are ⊑-comparable.
#[must_use]
pub fn is_antichain(words: &[Word]) -> bool {
    for (i, u) in words.iter().enumerate() {
        for w in words.iter().skip(i + 1) {
            if is_subword(u, w) || is_subword(w, u) {
                return false;
            }
        }
    }
    true
}

/// NFA for the upward closure `↑L = {w : ∃u ∈ basis, u ⊑ w}` of a finite
/// set of words.
///
/// One chain of states per basis word, with self-loops on every alphabet
/// letter — the standard witness that upward-closed languages are regular.
///
/// ```
/// use tvg_langs::{wqo::upward_closure_nfa, Alphabet, word};
/// let up = upward_closure_nfa(&[word("ab")], &Alphabet::ab());
/// assert!(up.accepts(&word("aabb")));
/// assert!(!up.accepts(&word("ba")));
/// ```
#[must_use]
pub fn upward_closure_nfa(basis: &[Word], alphabet: &Alphabet) -> Nfa {
    let mut result: Option<Nfa> = None;
    for u in basis {
        let mut nfa = Nfa::new(alphabet.clone(), u.len() + 1);
        nfa.add_start(0).expect("state exists");
        nfa.add_accepting(u.len()).expect("state exists");
        for i in 0..=u.len() {
            for l in alphabet.iter() {
                nfa.add_transition(i, Some(l.as_char()), i)
                    .expect("alphabet letter");
            }
            if let Some(l) = u.get(i) {
                nfa.add_transition(i, Some(l.as_char()), i + 1)
                    .expect("alphabet letter");
            }
        }
        result = Some(match result {
            None => nfa,
            Some(acc) => acc.union(&nfa).expect("same alphabet"),
        });
    }
    result.unwrap_or_else(|| Nfa::empty_language(alphabet.clone()))
}

/// NFA for the downward closure `↓L = {w : ∃u ∈ basis, w ⊑ u}`.
#[must_use]
pub fn downward_closure_nfa(basis: &[Word], alphabet: &Alphabet) -> Nfa {
    let mut result: Option<Nfa> = None;
    for u in basis {
        let mut nfa = Nfa::new(alphabet.clone(), u.len() + 1);
        nfa.add_start(0).expect("state exists");
        nfa.add_accepting(u.len()).expect("state exists");
        for (i, l) in u.iter().enumerate() {
            nfa.add_transition(i, Some(l.as_char()), i + 1)
                .expect("alphabet letter");
            nfa.add_transition(i, None, i + 1).expect("state exists");
        }
        result = Some(match result {
            None => nfa,
            Some(acc) => acc.union(&nfa).expect("same alphabet"),
        });
    }
    result.unwrap_or_else(|| Nfa::empty_language(alphabet.clone()))
}

/// Returns `true` iff `lang` (decided by `oracle`) is upward-closed within
/// the universe of words up to `max_len`: every superword (within the
/// universe) of a member is a member.
pub fn is_upward_closed_upto<F: FnMut(&Word) -> bool>(
    alphabet: &Alphabet,
    max_len: usize,
    mut oracle: F,
) -> bool {
    let universe = crate::sample::words_upto(alphabet, max_len);
    let members: Vec<bool> = universe.iter().map(&mut oracle).collect();
    for (i, u) in universe.iter().enumerate() {
        if !members[i] {
            continue;
        }
        for (j, w) in universe.iter().enumerate() {
            if !members[j] && is_subword(u, w) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::words_upto;
    use crate::word;

    #[test]
    fn embedding_basics() {
        assert!(is_subword(&Word::empty(), &word("abc")));
        assert!(is_subword(&word("abc"), &word("abc")));
        assert!(is_subword(&word("ac"), &word("abc")));
        assert!(!is_subword(&word("abc"), &word("ab")));
        assert!(!is_subword(&word("aa"), &word("ab")));
    }

    #[test]
    fn embedding_is_reflexive_and_transitive_sampled() {
        let words = words_upto(&Alphabet::ab(), 5);
        for u in &words {
            assert!(is_subword(u, u), "{u}");
        }
        // Transitivity on a sampled triple set.
        for u in words.iter().filter(|w| w.len() <= 2) {
            for v in words.iter().filter(|w| w.len() <= 3) {
                for w in words.iter().filter(|w| w.len() <= 4) {
                    if is_subword(u, v) && is_subword(v, w) {
                        assert!(is_subword(u, w), "{u} {v} {w}");
                    }
                }
            }
        }
    }

    #[test]
    fn upward_closure_matches_brute_force() {
        let sigma = Alphabet::ab();
        let basis = [word("ab"), word("ba")];
        let nfa = upward_closure_nfa(&basis, &sigma);
        for w in words_upto(&sigma, 6) {
            let expected = basis.iter().any(|u| is_subword(u, &w));
            assert_eq!(nfa.accepts(&w), expected, "{w}");
        }
    }

    #[test]
    fn downward_closure_matches_brute_force() {
        let sigma = Alphabet::ab();
        let basis = [word("abab")];
        let nfa = downward_closure_nfa(&basis, &sigma);
        for w in words_upto(&sigma, 5) {
            let expected = basis.iter().any(|u| is_subword(&w, u));
            assert_eq!(nfa.accepts(&w), expected, "{w}");
        }
    }

    #[test]
    fn closure_of_empty_basis_is_empty_language() {
        let sigma = Alphabet::ab();
        assert!(upward_closure_nfa(&[], &sigma).to_dfa().is_language_empty());
        assert!(downward_closure_nfa(&[], &sigma)
            .to_dfa()
            .is_language_empty());
    }

    #[test]
    fn minimal_elements_generate_same_closure() {
        let sigma = Alphabet::ab();
        let words = vec![word("ab"), word("ba"), word("aabb"), word("ab")];
        let minimal = minimal_elements(&words);
        // "aabb" ⊒ "ab" is pruned; the duplicate "ab" is kept once.
        assert_eq!(minimal, vec![word("ab"), word("ba")]);
        let full = upward_closure_nfa(&words, &sigma).to_dfa();
        let reduced = upward_closure_nfa(&minimal, &sigma).to_dfa();
        assert!(full.equivalent_to(&reduced));
    }

    #[test]
    fn antichain_detection() {
        assert!(is_antichain(&[word("ab"), word("ba")]));
        assert!(!is_antichain(&[word("ab"), word("aabb")]));
        assert!(is_antichain(&[]));
        assert!(is_antichain(&[word("a")]));
    }

    #[test]
    fn upward_closed_check() {
        let sigma = Alphabet::ab();
        // "contains at least one a" is upward closed.
        assert!(is_upward_closed_upto(&sigma, 5, |w| w.count_char('a') >= 1));
        // "exactly one a" is not.
        assert!(!is_upward_closed_upto(&sigma, 5, |w| w.count_char('a') == 1));
    }
}
