//! Regular-expression synthesis from a DFA (state elimination).
//!
//! Theorem 2.2's punchline is that a waiting language *is* a regular
//! expression; this module produces that expression. Combined with the
//! Theorem 2.2 compiler in `tvg-expressivity`, a periodic TVG's waiting
//! language can be handed to a user as a plain regex string.
//!
//! Classic Brzozowski–McCluskey state elimination over a generalized NFA,
//! with algebraic simplification (identities of `∅`, `ε`, idempotent
//! alternation) keeping the output readable for small automata. Output
//! size can still grow exponentially in pathological cases — intended for
//! the small minimal DFAs the compilers produce.

use crate::{Dfa, Regex};

/// Synthesizes a regular expression for `L(dfa)`.
///
/// The result always satisfies
/// `Regex::to_nfa(..).to_dfa() ≡ dfa` (up to language equality).
///
/// ```
/// use tvg_langs::{synth::dfa_to_regex, word, Alphabet, Regex};
///
/// let dfa = Regex::parse("(ab)*", &Alphabet::ab())?
///     .to_nfa(&Alphabet::ab())
///     .to_dfa()
///     .minimize();
/// let synthesized = dfa_to_regex(&dfa);
/// let back = synthesized.to_nfa(&Alphabet::ab()).to_dfa();
/// assert!(back.equivalent_to(&dfa));
/// # Ok::<(), tvg_langs::RegexError>(())
/// ```
#[must_use]
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    let n = dfa.num_states();
    // GNFA over states 0..n plus start = n, accept = n + 1.
    let start = n;
    let accept = n + 1;
    let total = n + 2;
    let mut r: Vec<Vec<Regex>> = vec![vec![Regex::Empty; total]; total];

    #[allow(clippy::needless_range_loop)] // s indexes both the dfa and r
    for s in 0..n {
        for letter in dfa.alphabet().iter() {
            let t = dfa.step(s, letter).expect("total dfa");
            let edge = Regex::Lit(letter);
            r[s][t] = alt(std::mem::replace(&mut r[s][t], Regex::Empty), edge);
        }
        if dfa.is_accepting(s) {
            r[s][accept] = Regex::Epsilon;
        }
    }
    r[start][dfa.start()] = Regex::Epsilon;

    // Eliminate the original states one by one.
    for k in 0..n {
        let loop_k = star(r[k][k].clone());
        let sources: Vec<usize> = (0..total)
            .filter(|&i| i != k && !matches!(r[i][k], Regex::Empty))
            .collect();
        let targets: Vec<usize> = (0..total)
            .filter(|&j| j != k && !matches!(r[k][j], Regex::Empty))
            .collect();
        for &i in &sources {
            for &j in &targets {
                let detour = concat(concat(r[i][k].clone(), loop_k.clone()), r[k][j].clone());
                let existing = std::mem::replace(&mut r[i][j], Regex::Empty);
                r[i][j] = alt(existing, detour);
            }
        }
        for row in &mut r {
            row[k] = Regex::Empty;
        }
        for cell in &mut r[k] {
            *cell = Regex::Empty;
        }
    }
    r[start][accept].clone()
}

/// Simplifying alternation: `∅ | r = r`, `r | r = r`.
fn alt(a: Regex, b: Regex) -> Regex {
    match (a, b) {
        (Regex::Empty, x) | (x, Regex::Empty) => x,
        (x, y) if x == y => x,
        (x, y) => Regex::Alt(Box::new(x), Box::new(y)),
    }
}

/// Simplifying concatenation: `∅ · r = ∅`, `ε · r = r`.
fn concat(a: Regex, b: Regex) -> Regex {
    match (a, b) {
        (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
        (Regex::Epsilon, x) | (x, Regex::Epsilon) => x,
        (x, y) => Regex::Concat(Box::new(x), Box::new(y)),
    }
}

/// Simplifying star: `∅* = ε* = ε`, `(r*)* = r*`.
fn star(a: Regex) -> Regex {
    match a {
        Regex::Empty | Regex::Epsilon => Regex::Epsilon,
        s @ Regex::Star(_) => s,
        x => Regex::Star(Box::new(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::words_upto;
    use crate::{Alphabet, Word};

    fn roundtrip(pattern: &str) {
        let sigma = Alphabet::ab();
        let dfa = Regex::parse(pattern, &sigma)
            .expect("parses")
            .to_nfa(&sigma)
            .to_dfa()
            .minimize();
        let synthesized = dfa_to_regex(&dfa);
        let back = synthesized.to_nfa(&sigma).to_dfa();
        assert!(
            back.equivalent_to(&dfa),
            "{pattern} → {synthesized} changed the language"
        );
    }

    #[test]
    fn synthesis_roundtrips_common_patterns() {
        for pattern in [
            "a",
            "ab",
            "a*",
            "(ab)*",
            "a*b*",
            "(a|b)*ab",
            "a(a|b)+",
            "(a|b)*b(a|b)*",
            "a?b?a?",
        ] {
            roundtrip(pattern);
        }
    }

    #[test]
    fn empty_and_universal() {
        let sigma = Alphabet::ab();
        let empty = Dfa::empty_language(sigma.clone());
        assert_eq!(dfa_to_regex(&empty), Regex::Empty);
        let universal = Dfa::universal(sigma.clone());
        let re = dfa_to_regex(&universal);
        let back = re.to_nfa(&sigma).to_dfa();
        for w in words_upto(&sigma, 4) {
            assert!(back.accepts(&w), "{w}");
        }
    }

    #[test]
    fn epsilon_only_language() {
        let sigma = Alphabet::ab();
        // DFA accepting only ε: accept start, dead otherwise.
        let dfa = Dfa::new(
            sigma.clone(),
            vec![vec![1, 1], vec![1, 1]],
            0,
            vec![true, false],
        )
        .expect("valid");
        let re = dfa_to_regex(&dfa);
        let back = re.to_nfa(&sigma).to_dfa();
        assert!(back.accepts(&Word::empty()));
        for w in words_upto(&sigma, 3) {
            if !w.is_empty() {
                assert!(!back.accepts(&w), "{w}");
            }
        }
    }

    #[test]
    fn synthesized_regex_is_printable_and_reparsable() {
        let sigma = Alphabet::ab();
        let dfa = Regex::parse("(a|b)*ab", &sigma)
            .expect("parses")
            .to_nfa(&sigma)
            .to_dfa()
            .minimize();
        let re = dfa_to_regex(&dfa);
        let printed = re.to_string();
        let reparsed = Regex::parse(&printed, &sigma).expect("display output parses");
        let back = reparsed.to_nfa(&sigma).to_dfa();
        assert!(back.equivalent_to(&dfa));
    }
}
