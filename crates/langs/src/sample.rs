//! Word enumeration and sampling utilities.
//!
//! Languages of TVGs are compared by exhaustive enumeration up to a length
//! bound; these helpers generate the word universes for those comparisons.

use crate::{Alphabet, Word};
use rand::Rng;
use std::collections::BTreeSet;

/// All words over `alphabet` of length exactly `len`, in lexicographic
/// order of letter indices.
///
/// ```
/// use tvg_langs::{sample::words_of_length, Alphabet};
/// assert_eq!(words_of_length(&Alphabet::ab(), 2).len(), 4);
/// ```
#[must_use]
pub fn words_of_length(alphabet: &Alphabet, len: usize) -> Vec<Word> {
    let k = alphabet.len();
    let mut out = Vec::with_capacity(k.pow(len.min(20) as u32));
    let mut indices = vec![0usize; len];
    loop {
        out.push(indices.iter().map(|&i| alphabet.letter(i)).collect());
        // Odometer increment.
        let mut pos = len;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < k {
                break;
            }
            indices[pos] = 0;
        }
    }
}

/// All words over `alphabet` of length at most `max_len`, in shortlex
/// order. Size is `(k^(max_len+1) - 1)/(k - 1)`; keep `max_len` small.
///
/// ```
/// use tvg_langs::{sample::words_upto, Alphabet};
/// assert_eq!(words_upto(&Alphabet::ab(), 3).len(), 1 + 2 + 4 + 8);
/// ```
#[must_use]
pub fn words_upto(alphabet: &Alphabet, max_len: usize) -> Vec<Word> {
    let mut out = Vec::new();
    for len in 0..=max_len {
        out.extend(words_of_length(alphabet, len));
    }
    out
}

/// A uniformly random word of length `len`.
pub fn random_word<R: Rng + ?Sized>(rng: &mut R, alphabet: &Alphabet, len: usize) -> Word {
    (0..len)
        .map(|_| alphabet.letter(rng.gen_range(0..alphabet.len())))
        .collect()
}

/// The subset of `words` accepted by `oracle`, as a sorted set.
pub fn language_filter<F: FnMut(&Word) -> bool>(words: &[Word], mut oracle: F) -> BTreeSet<Word> {
    words.iter().filter(|w| oracle(w)).cloned().collect()
}

/// Returns the words on which two oracles disagree, up to `max_len`.
///
/// Empty result means the oracles agree on the sampled universe — the
/// workhorse check behind every theorem-reproduction experiment.
pub fn disagreements<F, G>(
    alphabet: &Alphabet,
    max_len: usize,
    mut left: F,
    mut right: G,
) -> Vec<Word>
where
    F: FnMut(&Word) -> bool,
    G: FnMut(&Word) -> bool,
{
    words_upto(alphabet, max_len)
        .into_iter()
        .filter(|w| left(w) != right(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn words_of_length_counts() {
        let sigma = Alphabet::abc();
        for len in 0..5 {
            assert_eq!(words_of_length(&sigma, len).len(), 3usize.pow(len as u32));
        }
    }

    #[test]
    fn words_of_length_zero_is_epsilon() {
        assert_eq!(words_of_length(&Alphabet::ab(), 0), vec![Word::empty()]);
    }

    #[test]
    fn words_upto_is_shortlex_and_complete() {
        let all = words_upto(&Alphabet::ab(), 2);
        assert_eq!(
            all,
            vec![
                Word::empty(),
                word("a"),
                word("b"),
                word("aa"),
                word("ab"),
                word("ba"),
                word("bb"),
            ]
        );
    }

    #[test]
    fn words_are_distinct() {
        let all = words_upto(&Alphabet::abc(), 4);
        let set: BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn random_word_has_requested_length_and_alphabet() {
        let mut rng = StdRng::seed_from_u64(7);
        let sigma = Alphabet::abc();
        for len in [0usize, 1, 5, 32] {
            let w = random_word(&mut rng, &sigma, len);
            assert_eq!(w.len(), len);
            assert!(w.is_over(&sigma));
        }
    }

    #[test]
    fn language_filter_selects() {
        let words = words_upto(&Alphabet::ab(), 3);
        let lang = language_filter(&words, |w| w.len() == 2);
        assert_eq!(lang.len(), 4);
    }

    #[test]
    fn disagreements_empty_for_identical_oracles() {
        let sigma = Alphabet::ab();
        let diff = disagreements(&sigma, 5, |w| w.len() % 2 == 0, |w| w.len() % 2 == 0);
        assert!(diff.is_empty());
        let diff2 = disagreements(&sigma, 3, |w| w.len() % 2 == 0, |_| true);
        assert!(!diff2.is_empty());
    }
}
