//! Regular expressions: AST, parser, and compilation to NFA.
//!
//! Used by tests and experiments to state expected regular languages
//! (e.g. the waiting-language of a periodic TVG) in readable form.
//!
//! Syntax: letters are literals; `|` alternation, juxtaposition
//! concatenation, postfix `*`/`+`/`?`, `.` any alphabet letter, `()`
//! grouping, `ε` the empty word. An empty alternation branch also denotes
//! ε, so `(a|)` is "optional a".

use crate::{Alphabet, Letter, Nfa, Word};
use std::error::Error;
use std::fmt;

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The empty word ε.
    Epsilon,
    /// A single letter.
    Lit(Letter),
    /// Any single alphabet letter (`.`).
    AnyLetter,
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

/// Errors from parsing a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// A character that is neither an operator nor an alphabet letter.
    UnexpectedChar {
        /// Offset of the offending character.
        position: usize,
        /// The offending character.
        ch: char,
    },
    /// A closing parenthesis with no matching opener, or vice versa.
    UnbalancedParens {
        /// Offset of the unbalanced parenthesis.
        position: usize,
    },
    /// A postfix operator with nothing to apply to.
    DanglingPostfix {
        /// Offset of the operator.
        position: usize,
        /// The operator character.
        ch: char,
    },
    /// Input ended inside a group.
    UnexpectedEnd,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::UnexpectedChar { position, ch } => {
                write!(f, "unexpected character {ch:?} at position {position}")
            }
            RegexError::UnbalancedParens { position } => {
                write!(f, "unbalanced parenthesis at position {position}")
            }
            RegexError::DanglingPostfix { position, ch } => {
                write!(
                    f,
                    "postfix operator {ch:?} at position {position} has no operand"
                )
            }
            RegexError::UnexpectedEnd => write!(f, "unexpected end of pattern"),
        }
    }
}

impl Error for RegexError {}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    alphabet: &'a Alphabet,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Regex, RegexError> {
        let mut lhs = self.parse_concat()?;
        while self.peek() == Some('|') {
            self.bump();
            let rhs = self.parse_concat()?;
            lhs = Regex::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_concat(&mut self) -> Result<Regex, RegexError> {
        let mut parts: Vec<Regex> = Vec::new();
        loop {
            match self.peek() {
                None | Some('|') | Some(')') => break,
                Some('*') | Some('+') | Some('?') => {
                    return Err(RegexError::DanglingPostfix {
                        position: self.pos,
                        ch: self.peek().expect("peeked"),
                    })
                }
                _ => parts.push(self.parse_postfix()?),
            }
        }
        Ok(parts
            .into_iter()
            .reduce(|a, b| Regex::Concat(Box::new(a), Box::new(b)))
            .unwrap_or(Regex::Epsilon))
    }

    fn parse_postfix(&mut self) -> Result<Regex, RegexError> {
        let mut atom = self.parse_atom()?;
        while let Some(c) = self.peek() {
            match c {
                '*' => {
                    self.bump();
                    atom = Regex::Star(Box::new(atom));
                }
                '+' => {
                    self.bump();
                    atom = Regex::Concat(
                        Box::new(atom.clone()),
                        Box::new(Regex::Star(Box::new(atom))),
                    );
                }
                '?' => {
                    self.bump();
                    atom = Regex::Alt(Box::new(atom), Box::new(Regex::Epsilon));
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Regex, RegexError> {
        let position = self.pos;
        match self.bump() {
            None => Err(RegexError::UnexpectedEnd),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(RegexError::UnbalancedParens { position });
                }
                Ok(inner)
            }
            Some('.') => Ok(Regex::AnyLetter),
            Some('ε') => Ok(Regex::Epsilon),
            Some(c) => {
                let l =
                    Letter::new(c).map_err(|_| RegexError::UnexpectedChar { position, ch: c })?;
                if !self.alphabet.contains(l) {
                    return Err(RegexError::UnexpectedChar { position, ch: c });
                }
                Ok(Regex::Lit(l))
            }
        }
    }
}

impl Regex {
    /// Parses `pattern` over `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns a [`RegexError`] locating the first syntax problem.
    ///
    /// ```
    /// use tvg_langs::{Alphabet, Regex, word};
    /// let re = Regex::parse("a(a|b)*b", &Alphabet::ab())?;
    /// let dfa = re.to_nfa(&Alphabet::ab()).to_dfa();
    /// assert!(dfa.accepts(&word("aab")));
    /// assert!(!dfa.accepts(&word("ba")));
    /// # Ok::<(), tvg_langs::RegexError>(())
    /// ```
    pub fn parse(pattern: &str, alphabet: &Alphabet) -> Result<Self, RegexError> {
        let mut p = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            alphabet,
        };
        let re = p.parse_alt()?;
        match p.peek() {
            None => Ok(re),
            Some(')') => Err(RegexError::UnbalancedParens { position: p.pos }),
            Some(c) => Err(RegexError::UnexpectedChar {
                position: p.pos,
                ch: c,
            }),
        }
    }

    /// Thompson construction: an NFA for this expression over `alphabet`.
    ///
    /// # Panics
    ///
    /// Panics if the expression contains a literal outside `alphabet`
    /// (impossible for expressions produced by [`Regex::parse`] with the
    /// same alphabet).
    #[must_use]
    pub fn to_nfa(&self, alphabet: &Alphabet) -> Nfa {
        match self {
            Regex::Empty => Nfa::empty_language(alphabet.clone()),
            Regex::Epsilon => Nfa::literal(alphabet.clone(), &Word::empty()),
            Regex::Lit(l) => Nfa::literal(alphabet.clone(), &Word::from_letters(vec![*l])),
            Regex::AnyLetter => {
                let mut nfa = Nfa::new(alphabet.clone(), 2);
                nfa.add_start(0).expect("state 0 exists");
                nfa.add_accepting(1).expect("state 1 exists");
                for l in alphabet.iter() {
                    nfa.add_transition(0, Some(l.as_char()), 1)
                        .expect("alphabet letter");
                }
                nfa
            }
            Regex::Concat(a, b) => a
                .to_nfa(alphabet)
                .concat(&b.to_nfa(alphabet))
                .expect("same alphabet by construction"),
            Regex::Alt(a, b) => a
                .to_nfa(alphabet)
                .union(&b.to_nfa(alphabet))
                .expect("same alphabet by construction"),
            Regex::Star(a) => a.to_nfa(alphabet).star(),
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Lit(l) => write!(f, "{l}"),
            Regex::AnyLetter => write!(f, "."),
            Regex::Concat(a, b) => write!(f, "{a}{b}"),
            Regex::Alt(a, b) => write!(f, "({a}|{b})"),
            Regex::Star(a) => match **a {
                Regex::Lit(_) | Regex::AnyLetter => write!(f, "{a}*"),
                _ => write!(f, "({a})*"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample::words_upto, word};

    fn lang(pattern: &str) -> impl Fn(&Word) -> bool {
        let dfa = Regex::parse(pattern, &Alphabet::ab())
            .expect("pattern parses")
            .to_nfa(&Alphabet::ab())
            .to_dfa();
        move |w: &Word| dfa.accepts(w)
    }

    #[test]
    fn literals_and_concat() {
        let f = lang("ab");
        assert!(f(&word("ab")));
        assert!(!f(&word("a")));
        assert!(!f(&word("abb")));
    }

    #[test]
    fn alternation_and_star() {
        let f = lang("(a|b)*abb");
        assert!(f(&word("abb")));
        assert!(f(&word("bababb")));
        assert!(!f(&word("ab")));
    }

    #[test]
    fn plus_and_question() {
        let f = lang("a+b?");
        assert!(f(&word("a")));
        assert!(f(&word("aaab")));
        assert!(!f(&word("b")));
        assert!(!f(&word("abb")));
    }

    #[test]
    fn empty_branch_is_epsilon() {
        let f = lang("a|");
        assert!(f(&Word::empty()));
        assert!(f(&word("a")));
        assert!(!f(&word("b")));
    }

    #[test]
    fn dot_matches_any_letter() {
        let f = lang(".*");
        for w in words_upto(&Alphabet::ab(), 4) {
            assert!(f(&w), "{w}");
        }
        let g = lang("a.b");
        assert!(g(&word("aab")));
        assert!(g(&word("abb")));
        assert!(!g(&word("ab")));
    }

    #[test]
    fn parse_errors_are_located() {
        let sigma = Alphabet::ab();
        assert_eq!(
            Regex::parse("a(b", &sigma),
            Err(RegexError::UnbalancedParens { position: 1 })
        );
        assert_eq!(
            Regex::parse("a)b", &sigma),
            Err(RegexError::UnbalancedParens { position: 1 })
        );
        assert_eq!(
            Regex::parse("*a", &sigma),
            Err(RegexError::DanglingPostfix {
                position: 0,
                ch: '*'
            })
        );
        assert_eq!(
            Regex::parse("ac", &sigma),
            Err(RegexError::UnexpectedChar {
                position: 1,
                ch: 'c'
            })
        );
    }

    #[test]
    fn empty_pattern_is_epsilon() {
        let f = lang("");
        assert!(f(&Word::empty()));
        assert!(!f(&word("a")));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let sigma = Alphabet::ab();
        for pat in ["a", "ab", "(a|b)*", "a+b?", "a(ba)*"] {
            let re = Regex::parse(pat, &sigma).expect("parses");
            let re2 = Regex::parse(&re.to_string(), &sigma).expect("display output parses");
            // Language equality (ASTs may differ syntactically).
            let d1 = re.to_nfa(&sigma).to_dfa();
            let d2 = re2.to_nfa(&sigma).to_dfa();
            assert!(d1.equivalent_to(&d2), "{pat}");
        }
    }
}
