//! Letters, alphabets, and words — the vocabulary journeys are spelled in.
//!
//! In the paper, TVG edges are labeled by symbols of an alphabet Σ and a
//! journey spells the word formed by its edge labels. These types are shared
//! by every crate in the workspace.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A single symbol of an alphabet.
///
/// Letters wrap a printable ASCII byte; they display as the character
/// itself, so words print as plain strings (`"aabb"`).
///
/// ```
/// use tvg_langs::Letter;
/// let a = Letter::new('a')?;
/// assert_eq!(a.as_char(), 'a');
/// # Ok::<(), tvg_langs::AlphabetError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Letter(u8);

impl Letter {
    /// Creates a letter from a printable ASCII character.
    ///
    /// # Errors
    ///
    /// Returns [`AlphabetError::NotPrintableAscii`] for characters outside
    /// the printable ASCII range (space excluded).
    pub fn new(c: char) -> Result<Self, AlphabetError> {
        if c.is_ascii_graphic() {
            Ok(Letter(c as u8))
        } else {
            Err(AlphabetError::NotPrintableAscii(c))
        }
    }

    /// The character this letter displays as.
    #[must_use]
    pub fn as_char(self) -> char {
        self.0 as char
    }
}

impl fmt::Display for Letter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

/// Errors from constructing letters, alphabets, and words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphabetError {
    /// The character is not printable ASCII.
    NotPrintableAscii(char),
    /// The same letter was given twice when building an alphabet.
    DuplicateLetter(char),
    /// An empty alphabet was requested where at least one letter is needed.
    Empty,
    /// A word used a letter that is not part of the alphabet.
    LetterNotInAlphabet(char),
}

impl fmt::Display for AlphabetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlphabetError::NotPrintableAscii(c) => {
                write!(f, "character {c:?} is not printable ascii")
            }
            AlphabetError::DuplicateLetter(c) => {
                write!(f, "duplicate letter {c:?} in alphabet")
            }
            AlphabetError::Empty => write!(f, "alphabet must contain at least one letter"),
            AlphabetError::LetterNotInAlphabet(c) => {
                write!(f, "letter {c:?} is not in the alphabet")
            }
        }
    }
}

impl Error for AlphabetError {}

/// An ordered set of distinct letters.
///
/// The ordering fixes the column layout of DFA transition tables and the
/// digit assignment of the Theorem-2.1 time encoding, so it is part of the
/// type's contract.
///
/// ```
/// use tvg_langs::Alphabet;
/// let sigma = Alphabet::from_chars("ab")?;
/// assert_eq!(sigma.len(), 2);
/// assert_eq!(sigma.index_of_char('b'), Some(1));
/// # Ok::<(), tvg_langs::AlphabetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Alphabet {
    letters: Vec<Letter>,
}

impl Alphabet {
    /// Builds an alphabet from distinct printable ASCII characters.
    ///
    /// # Errors
    ///
    /// Returns an error if `chars` is empty, contains duplicates, or
    /// contains non-printable characters.
    pub fn from_chars(chars: &str) -> Result<Self, AlphabetError> {
        if chars.is_empty() {
            return Err(AlphabetError::Empty);
        }
        let mut letters = Vec::with_capacity(chars.len());
        for c in chars.chars() {
            let l = Letter::new(c)?;
            if letters.contains(&l) {
                return Err(AlphabetError::DuplicateLetter(c));
            }
            letters.push(l);
        }
        Ok(Alphabet { letters })
    }

    /// The binary alphabet `{a, b}` used throughout the paper's examples.
    #[must_use]
    pub fn ab() -> Self {
        Alphabet::from_chars("ab").expect("static alphabet is valid")
    }

    /// The ternary alphabet `{a, b, c}`.
    #[must_use]
    pub fn abc() -> Self {
        Alphabet::from_chars("abc").expect("static alphabet is valid")
    }

    /// Number of letters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// `true` iff the alphabet has no letters (never true for constructed values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The letter at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn letter(&self, i: usize) -> Letter {
        self.letters[i]
    }

    /// Position of `l` in the alphabet, if present.
    #[must_use]
    pub fn index_of(&self, l: Letter) -> Option<usize> {
        self.letters.iter().position(|&x| x == l)
    }

    /// Position of the letter displaying as `c`, if present.
    #[must_use]
    pub fn index_of_char(&self, c: char) -> Option<usize> {
        Letter::new(c).ok().and_then(|l| self.index_of(l))
    }

    /// Returns `true` iff `l` belongs to the alphabet.
    #[must_use]
    pub fn contains(&self, l: Letter) -> bool {
        self.index_of(l).is_some()
    }

    /// Iterates over the letters in order.
    pub fn iter(&self) -> impl Iterator<Item = Letter> + '_ {
        self.letters.iter().copied()
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.letters.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// A finite word over some alphabet.
///
/// Words parse from and display as plain strings:
///
/// ```
/// use tvg_langs::Word;
/// let w: Word = "aabb".parse()?;
/// assert_eq!(w.len(), 4);
/// assert_eq!(w.to_string(), "aabb");
/// # Ok::<(), tvg_langs::AlphabetError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Word {
    letters: Vec<Letter>,
}

impl Word {
    /// The empty word ε.
    #[must_use]
    pub fn empty() -> Self {
        Word {
            letters: Vec::new(),
        }
    }

    /// Builds a word from letters.
    #[must_use]
    pub fn from_letters(letters: Vec<Letter>) -> Self {
        Word { letters }
    }

    /// Length of the word (`0` for ε).
    #[must_use]
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// `true` iff this is the empty word.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The letter at position `i`, if any.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<Letter> {
        self.letters.get(i).copied()
    }

    /// Appends a letter in place.
    pub fn push(&mut self, l: Letter) {
        self.letters.push(l);
    }

    /// Returns `self · other` (concatenation).
    #[must_use]
    pub fn concat(&self, other: &Word) -> Word {
        let mut letters = self.letters.clone();
        letters.extend_from_slice(&other.letters);
        Word { letters }
    }

    /// Returns the word extended by one letter.
    #[must_use]
    pub fn appended(&self, l: Letter) -> Word {
        let mut w = self.clone();
        w.push(l);
        w
    }

    /// Iterates over the letters.
    pub fn iter(&self) -> impl Iterator<Item = Letter> + '_ {
        self.letters.iter().copied()
    }

    /// View of the underlying letters.
    #[must_use]
    pub fn as_slice(&self) -> &[Letter] {
        &self.letters
    }

    /// Returns `true` iff every letter belongs to `alphabet`.
    #[must_use]
    pub fn is_over(&self, alphabet: &Alphabet) -> bool {
        self.letters.iter().all(|&l| alphabet.contains(l))
    }

    /// Counts occurrences of the letter displaying as `c`.
    #[must_use]
    pub fn count_char(&self, c: char) -> usize {
        match Letter::new(c) {
            Ok(l) => self.letters.iter().filter(|&&x| x == l).count(),
            Err(_) => 0,
        }
    }

    /// The reverse word.
    #[must_use]
    pub fn reversed(&self) -> Word {
        Word {
            letters: self.letters.iter().rev().copied().collect(),
        }
    }
}

impl FromStr for Word {
    type Err = AlphabetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut letters = Vec::with_capacity(s.len());
        for c in s.chars() {
            letters.push(Letter::new(c)?);
        }
        Ok(Word { letters })
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        for l in &self.letters {
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl FromIterator<Letter> for Word {
    fn from_iter<I: IntoIterator<Item = Letter>>(iter: I) -> Self {
        Word {
            letters: iter.into_iter().collect(),
        }
    }
}

impl Extend<Letter> for Word {
    fn extend<I: IntoIterator<Item = Letter>>(&mut self, iter: I) {
        self.letters.extend(iter);
    }
}

/// Convenience: parse a word from a literal, panicking on invalid input.
///
/// Intended for tests and examples where the literal is known-good.
///
/// # Panics
///
/// Panics if `s` contains non-printable-ASCII characters.
///
/// ```
/// use tvg_langs::word;
/// assert_eq!(word("ab").len(), 2);
/// ```
#[must_use]
pub fn word(s: &str) -> Word {
    s.parse().expect("literal word must be printable ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letter_construction() {
        assert!(Letter::new('a').is_ok());
        assert!(Letter::new('Z').is_ok());
        assert!(Letter::new('0').is_ok());
        assert_eq!(Letter::new(' '), Err(AlphabetError::NotPrintableAscii(' ')));
        assert_eq!(Letter::new('é'), Err(AlphabetError::NotPrintableAscii('é')));
    }

    #[test]
    fn alphabet_construction_and_lookup() {
        let sigma = Alphabet::from_chars("abc").expect("valid");
        assert_eq!(sigma.len(), 3);
        assert_eq!(sigma.index_of_char('a'), Some(0));
        assert_eq!(sigma.index_of_char('c'), Some(2));
        assert_eq!(sigma.index_of_char('z'), None);
        assert!(sigma.contains(Letter::new('b').expect("valid")));
    }

    #[test]
    fn alphabet_rejects_bad_input() {
        assert_eq!(Alphabet::from_chars(""), Err(AlphabetError::Empty));
        assert_eq!(
            Alphabet::from_chars("aa"),
            Err(AlphabetError::DuplicateLetter('a'))
        );
    }

    #[test]
    fn alphabet_display() {
        assert_eq!(Alphabet::ab().to_string(), "{a,b}");
    }

    #[test]
    fn word_roundtrip() {
        let w = word("abba");
        assert_eq!(w.to_string(), "abba");
        assert_eq!(w.len(), 4);
        assert_eq!(w.count_char('a'), 2);
        assert_eq!(w.count_char('b'), 2);
        assert_eq!(w.count_char('z'), 0);
    }

    #[test]
    fn empty_word_displays_epsilon() {
        assert_eq!(Word::empty().to_string(), "ε");
        assert!(Word::empty().is_empty());
    }

    #[test]
    fn word_concat_and_append() {
        let w = word("ab").concat(&word("ba"));
        assert_eq!(w, word("abba"));
        let w2 = word("ab").appended(Letter::new('c').expect("valid"));
        assert_eq!(w2, word("abc"));
    }

    #[test]
    fn word_reversal() {
        assert_eq!(word("abc").reversed(), word("cba"));
        assert_eq!(Word::empty().reversed(), Word::empty());
    }

    #[test]
    fn word_over_alphabet() {
        assert!(word("abab").is_over(&Alphabet::ab()));
        assert!(!word("abc").is_over(&Alphabet::ab()));
        assert!(Word::empty().is_over(&Alphabet::ab()));
    }

    #[test]
    fn word_collects_from_iterator() {
        let w: Word = Alphabet::ab().iter().collect();
        assert_eq!(w, word("ab"));
        let mut w2 = Word::empty();
        w2.extend(Alphabet::ab().iter());
        assert_eq!(w2, word("ab"));
    }

    #[test]
    fn word_ordering_is_length_then_lex() {
        // Derived Ord on Vec is lexicographic; we rely on it only for
        // determinism of BTreeSet iteration, not for shortlex.
        assert!(word("a") < word("b"));
    }
}
