//! Context-free grammars with an Earley recognizer.
//!
//! The paper's Figure 1 produces the context-free language `aⁿbⁿ` from a
//! TVG with direct journeys only; grammars serve as independent *reference
//! deciders* when cross-checking that construction (experiment E1/E2).
//!
//! Notation accepted by [`Grammar::from_rules`]: one rule per line,
//! `S -> a S b | ε`. Uppercase ASCII letters are nonterminals, every other
//! printable character is a terminal, `ε` (or an empty branch) is the empty
//! word. The first rule's left-hand side is the start symbol.

use crate::{Letter, Word};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A grammar symbol: terminal letter or nonterminal index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sym {
    /// Terminal.
    T(Letter),
    /// Nonterminal (index into the grammar's nonterminal table).
    N(usize),
}

/// Errors from parsing a grammar description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// No rules were given.
    Empty,
    /// A rule line is missing the `->` separator.
    MissingArrow {
        /// 1-based line number of the malformed rule.
        line: usize,
    },
    /// A rule's left-hand side is not a single uppercase letter.
    BadLhs {
        /// 1-based line number of the malformed rule.
        line: usize,
    },
    /// A symbol on a right-hand side is not printable ASCII.
    BadSymbol {
        /// 1-based line number of the malformed rule.
        line: usize,
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Empty => write!(f, "grammar has no rules"),
            GrammarError::MissingArrow { line } => {
                write!(f, "rule on line {line} is missing '->'")
            }
            GrammarError::BadLhs { line } => write!(
                f,
                "left-hand side on line {line} must be a single uppercase letter"
            ),
            GrammarError::BadSymbol { line, ch } => {
                write!(f, "symbol {ch:?} on line {line} is not printable ascii")
            }
        }
    }
}

impl Error for GrammarError {}

/// A context-free grammar with an Earley membership test.
///
/// ```
/// use tvg_langs::{Grammar, word};
/// let g = Grammar::from_rules("S -> a S b | a b")?;
/// assert!(g.recognizes(&word("aabb")));
/// assert!(!g.recognizes(&word("aab")));
/// # Ok::<(), tvg_langs::GrammarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Grammar {
    /// Display names of nonterminals (single uppercase chars).
    nonterminals: Vec<char>,
    start: usize,
    /// `(lhs nonterminal, rhs symbols)`.
    productions: Vec<(usize, Vec<Sym>)>,
    nullable: Vec<bool>,
}

impl Grammar {
    /// Parses a grammar from rule lines (see module docs for notation).
    ///
    /// # Errors
    ///
    /// Returns a [`GrammarError`] locating the first malformed rule.
    pub fn from_rules(rules: &str) -> Result<Self, GrammarError> {
        let mut nonterminals: Vec<char> = Vec::new();
        let mut raw: Vec<(char, Vec<String>)> = Vec::new();
        for (lineno, line) in rules.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((lhs, rhs)) = line.split_once("->") else {
                return Err(GrammarError::MissingArrow { line: lineno + 1 });
            };
            let lhs = lhs.trim();
            let mut chars = lhs.chars();
            let (Some(l), None) = (chars.next(), chars.next()) else {
                return Err(GrammarError::BadLhs { line: lineno + 1 });
            };
            if !l.is_ascii_uppercase() {
                return Err(GrammarError::BadLhs { line: lineno + 1 });
            }
            if !nonterminals.contains(&l) {
                nonterminals.push(l);
            }
            let branches = rhs.split('|').map(|b| b.trim().to_string()).collect();
            raw.push((l, branches));
        }
        if raw.is_empty() {
            return Err(GrammarError::Empty);
        }
        // Second pass: nonterminals referenced only on RHS.
        for (lineno, (_, branches)) in raw.iter().enumerate() {
            for b in branches {
                for c in b.chars() {
                    if c.is_ascii_uppercase() && !nonterminals.contains(&c) {
                        let _ = lineno;
                        nonterminals.push(c);
                    }
                }
            }
        }
        let mut productions = Vec::new();
        for (lineno, (lhs, branches)) in raw.iter().enumerate() {
            let lhs_idx = nonterminals
                .iter()
                .position(|n| n == lhs)
                .expect("inserted");
            for b in branches {
                let mut syms = Vec::new();
                for c in b.chars() {
                    if c.is_whitespace() || c == 'ε' {
                        continue;
                    }
                    if c.is_ascii_uppercase() {
                        let n = nonterminals.iter().position(|&x| x == c).expect("inserted");
                        syms.push(Sym::N(n));
                    } else {
                        let l = Letter::new(c).map_err(|_| GrammarError::BadSymbol {
                            line: lineno + 1,
                            ch: c,
                        })?;
                        syms.push(Sym::T(l));
                    }
                }
                productions.push((lhs_idx, syms));
            }
        }
        let nullable = compute_nullable(nonterminals.len(), &productions);
        Ok(Grammar {
            nonterminals,
            start: 0,
            productions,
            nullable,
        })
    }

    /// Number of productions.
    #[must_use]
    pub fn num_productions(&self) -> usize {
        self.productions.len()
    }

    /// Number of nonterminals.
    #[must_use]
    pub fn num_nonterminals(&self) -> usize {
        self.nonterminals.len()
    }

    /// Earley recognition: `true` iff `w` derives from the start symbol.
    #[must_use]
    pub fn recognizes(&self, w: &Word) -> bool {
        // Earley item: (production index, dot position, origin set).
        type Item = (usize, usize, usize);
        let n = w.len();
        let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
        let mut seen: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];

        let push =
            |sets: &mut Vec<Vec<Item>>, seen: &mut Vec<HashSet<Item>>, i: usize, item: Item| {
                if seen[i].insert(item) {
                    sets[i].push(item);
                }
            };

        for (p, (lhs, _)) in self.productions.iter().enumerate() {
            if *lhs == self.start {
                push(&mut sets, &mut seen, 0, (p, 0, 0));
            }
        }

        for i in 0..=n {
            let mut idx = 0;
            while idx < sets[i].len() {
                let (p, dot, origin) = sets[i][idx];
                idx += 1;
                let (lhs, rhs) = &self.productions[p];
                if dot < rhs.len() {
                    match rhs[dot] {
                        Sym::N(b) => {
                            // Predictor.
                            for (p2, (lhs2, _)) in self.productions.iter().enumerate() {
                                if *lhs2 == b {
                                    push(&mut sets, &mut seen, i, (p2, 0, i));
                                }
                            }
                            // Aycock–Horspool nullable shortcut: if B is
                            // nullable, also advance past it immediately.
                            if self.nullable[b] {
                                push(&mut sets, &mut seen, i, (p, dot + 1, origin));
                            }
                        }
                        Sym::T(t) => {
                            // Scanner.
                            if i < n && w.get(i) == Some(t) {
                                push(&mut sets, &mut seen, i + 1, (p, dot + 1, origin));
                            }
                        }
                    }
                } else {
                    // Completer.
                    let completed = *lhs;
                    let parents: Vec<Item> = sets[origin]
                        .iter()
                        .copied()
                        .filter(|&(p2, d2, _)| {
                            let (_, rhs2) = &self.productions[p2];
                            d2 < rhs2.len() && rhs2[d2] == Sym::N(completed)
                        })
                        .collect();
                    for (p2, d2, o2) in parents {
                        push(&mut sets, &mut seen, i, (p2, d2 + 1, o2));
                    }
                }
            }
        }

        sets[n].iter().any(|&(p, dot, origin)| {
            let (lhs, rhs) = &self.productions[p];
            *lhs == self.start && dot == rhs.len() && origin == 0
        })
    }

    /// The grammar `S -> a S b | ab` for the paper's headline language
    /// `{aⁿbⁿ : n ≥ 1}`.
    #[must_use]
    pub fn anbn() -> Self {
        Grammar::from_rules("S -> a S b | a b").expect("static grammar is valid")
    }

    /// Dyck-1: balanced strings of `a` (open) and `b` (close).
    #[must_use]
    pub fn dyck1() -> Self {
        Grammar::from_rules("S -> a S b S | ε").expect("static grammar is valid")
    }

    /// Even-length palindromes over `{a, b}`.
    #[must_use]
    pub fn even_palindromes() -> Self {
        Grammar::from_rules("S -> a S a | b S b | ε").expect("static grammar is valid")
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (lhs, rhs)) in self.productions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{} ->", self.nonterminals[*lhs])?;
            if rhs.is_empty() {
                write!(f, " ε")?;
            }
            for s in rhs {
                match s {
                    Sym::T(l) => write!(f, " {l}")?,
                    Sym::N(n) => write!(f, " {}", self.nonterminals[*n])?,
                }
            }
        }
        Ok(())
    }
}

fn compute_nullable(n_nonterminals: usize, productions: &[(usize, Vec<Sym>)]) -> Vec<bool> {
    let mut nullable = vec![false; n_nonterminals];
    loop {
        let mut changed = false;
        for (lhs, rhs) in productions {
            if nullable[*lhs] {
                continue;
            }
            let all_nullable = rhs.iter().all(|s| match s {
                Sym::T(_) => false,
                Sym::N(b) => nullable[*b],
            });
            if all_nullable {
                nullable[*lhs] = true;
                changed = true;
            }
        }
        if !changed {
            return nullable;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::words_upto;
    use crate::{word, Alphabet};

    #[test]
    fn anbn_matches_reference() {
        let g = Grammar::anbn();
        for w in words_upto(&Alphabet::ab(), 10) {
            let expected = {
                let n = w.count_char('a');
                n >= 1
                    && w.len() == 2 * n
                    && w.iter().take(n).all(|l| l.as_char() == 'a')
                    && w.iter().skip(n).all(|l| l.as_char() == 'b')
            };
            assert_eq!(g.recognizes(&w), expected, "{w}");
        }
    }

    #[test]
    fn dyck_matches_counter_reference() {
        let g = Grammar::dyck1();
        let balanced = |w: &Word| {
            let mut depth: i64 = 0;
            for l in w.iter() {
                depth += if l.as_char() == 'a' { 1 } else { -1 };
                if depth < 0 {
                    return false;
                }
            }
            depth == 0
        };
        for w in words_upto(&Alphabet::ab(), 10) {
            assert_eq!(g.recognizes(&w), balanced(&w), "{w}");
        }
    }

    #[test]
    fn even_palindromes_match_reference() {
        let g = Grammar::even_palindromes();
        for w in words_upto(&Alphabet::ab(), 9) {
            let expected = w.len() % 2 == 0 && w == w.reversed();
            assert_eq!(g.recognizes(&w), expected, "{w}");
        }
    }

    #[test]
    fn epsilon_handling() {
        let g = Grammar::from_rules("S -> ε").expect("valid");
        assert!(g.recognizes(&Word::empty()));
        assert!(!g.recognizes(&word("a")));
    }

    #[test]
    fn nullable_chains() {
        // S -> A B, A -> ε, B -> ε | a: tests the nullable shortcut.
        let g = Grammar::from_rules("S -> A B\nA -> ε\nB -> ε | a").expect("valid");
        assert!(g.recognizes(&Word::empty()));
        assert!(g.recognizes(&word("a")));
        assert!(!g.recognizes(&word("aa")));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Grammar::from_rules("").unwrap_err(), GrammarError::Empty);
        assert_eq!(
            Grammar::from_rules("S a b").unwrap_err(),
            GrammarError::MissingArrow { line: 1 }
        );
        assert_eq!(
            Grammar::from_rules("sx -> a").unwrap_err(),
            GrammarError::BadLhs { line: 1 }
        );
    }

    #[test]
    fn display_shows_rules() {
        let g = Grammar::from_rules("S -> a S b | ε").expect("valid");
        let shown = g.to_string();
        assert!(shown.contains("S -> a S b"));
        assert!(shown.contains("S -> ε"));
    }

    #[test]
    fn deep_nesting_recognized() {
        let g = Grammar::anbn();
        let mut w = String::new();
        for _ in 0..40 {
            w.insert(0, 'a');
            w.push('b');
        }
        assert!(g.recognizes(&word(&w)));
        w.push('b');
        assert!(!g.recognizes(&word(&w)));
    }
}
