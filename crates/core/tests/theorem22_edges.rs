//! Degenerate-input coverage for the Theorem 2.2 compiler pair
//! (`dfa_to_tvg_automaton` / `periodic_to_nfa`): the empty language, the
//! full language `Σ*`, and the single-letter alphabet all round-trip
//! exactly.
//!
//! These are the boundary points of the theorem's quantification — a
//! compiler bug that special-cases "no accepting states", "everything
//! accepts", or "only one letter" would slip past the random sweeps in
//! `props.rs` but not past these.

use std::collections::BTreeSet;
use tvg_expressivity::wait_regular::{
    dfa_to_tvg_automaton, eventually_periodic_to_nfa, periodic_to_nfa, sufficient_limits,
};
use tvg_journeys::WaitingPolicy;
use tvg_langs::sample::words_upto;
use tvg_langs::{Alphabet, Dfa, Word};
use tvg_testkit::oracles::{empty_language_dfa, regex_dfa, sigma_star_dfa, unary_alphabet};

fn policies() -> Vec<WaitingPolicy<u64>> {
    vec![
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(1),
        WaitingPolicy::Bounded(3),
        WaitingPolicy::Unbounded,
    ]
}

/// Embeds `dfa` as a TVG-automaton, compiles it back for every policy,
/// and asserts language equality with the original — the full Theorem 2.2
/// round-trip at period 1 (an `Always` schedule is 1-periodic).
fn assert_roundtrip(dfa: &Dfa, alphabet: &Alphabet, max_len: usize) {
    let aut = dfa_to_tvg_automaton(dfa);
    for policy in policies() {
        let nfa = periodic_to_nfa(&aut, 1, &policy, alphabet)
            .expect("always-present schedules are 1-periodic");
        assert!(
            nfa.to_dfa().equivalent_to(dfa),
            "compiled language differs under {policy}"
        );
        // The journey simulation agrees word by word, too.
        let limits = sufficient_limits(&aut, 1, max_len);
        for w in words_upto(alphabet, max_len) {
            assert_eq!(
                aut.accepts(&w, &policy, &limits),
                dfa.accepts(&w),
                "{policy} {w:?}"
            );
        }
        // And the eventually-periodic extension matches the plain
        // compiler on this purely periodic input.
        let ext = eventually_periodic_to_nfa(&aut, 1, &policy, alphabet)
            .expect("always-present schedules are eventually periodic");
        assert!(
            ext.to_dfa().equivalent_to(dfa),
            "extension differs under {policy}"
        );
    }
}

#[test]
fn empty_language_roundtrips() {
    let sigma = Alphabet::ab();
    let empty = empty_language_dfa(&sigma);
    assert_roundtrip(&empty, &sigma, 5);

    // The embedded automaton accepts nothing at all, empty word included.
    let aut = dfa_to_tvg_automaton(&empty);
    let limits = sufficient_limits(&aut, 1, 5);
    let lang = aut.language_upto(&WaitingPolicy::Unbounded, &limits, 5);
    assert!(lang.is_empty(), "{lang:?}");
}

#[test]
fn sigma_star_roundtrips() {
    let sigma = Alphabet::ab();
    let all = sigma_star_dfa(&sigma);
    assert_roundtrip(&all, &sigma, 5);

    // Σ* includes the empty word: initial state is accepting.
    let aut = dfa_to_tvg_automaton(&all);
    let limits = sufficient_limits(&aut, 1, 5);
    let lang = aut.language_upto(&WaitingPolicy::NoWait, &limits, 3);
    let expected: BTreeSet<Word> = words_upto(&sigma, 3).into_iter().collect();
    assert_eq!(lang, expected);
}

#[test]
fn unary_alphabet_roundtrips() {
    let sigma = unary_alphabet();
    // Even-length unary words: the smallest DFA whose language is neither
    // ∅ nor Σ* over one letter.
    let even = regex_dfa("(aa)*", &sigma);
    assert_roundtrip(&even, &sigma, 6);

    // Degenerate endpoints on the unary alphabet as well.
    assert_roundtrip(&empty_language_dfa(&sigma), &sigma, 6);
    assert_roundtrip(&sigma_star_dfa(&sigma), &sigma, 6);
}

#[test]
fn unary_periodic_compiles_beyond_period_one() {
    // A genuinely periodic unary automaton (edge up at phase 0 of 2):
    // under no-wait from start time 0 the journey uses the edge at even
    // instants only; with unbounded waiting every length is accepted.
    use tvg_expressivity::TvgAutomaton;
    use tvg_model::{Latency, NodeId, Presence, TvgBuilder};

    let sigma = unary_alphabet();
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(1);
    b.edge(
        v[0],
        v[0],
        'a',
        Presence::Periodic {
            period: 2,
            phases: BTreeSet::from([0u64]),
        },
        Latency::Const(2),
    )
    .expect("valid");
    let aut = TvgAutomaton::new(
        b.build().expect("valid"),
        BTreeSet::from([NodeId::from_index(0)]),
        BTreeSet::from([NodeId::from_index(0)]),
        0,
    )
    .expect("valid");

    for policy in policies() {
        let nfa = periodic_to_nfa(&aut, 2, &policy, &sigma).expect("periodic");
        let limits = sufficient_limits(&aut, 2, 5);
        let simulated = aut.language_upto(&policy, &limits, 5);
        let compiled: BTreeSet<Word> = nfa.to_dfa().language_upto(5).into_iter().collect();
        assert_eq!(simulated, compiled, "{policy}");
    }
    // Sanity: with even latency from an even phase the loop always
    // re-aligns, so every policy accepts every unary word here.
    let limits = sufficient_limits(&aut, 2, 5);
    let nowait = aut.language_upto(&WaitingPolicy::NoWait, &limits, 5);
    assert_eq!(nowait.len(), 6, "{nowait:?}"); // ε, a, aa, ..., aaaaa
}
