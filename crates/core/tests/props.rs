//! Property tests for the paper's constructions: the theorems hold on
//! randomly generated instances, not just the curated examples.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tvg_expressivity::anbn::{anbn_word, is_anbn, AnbnAutomaton};
use tvg_expressivity::dilation::dilation_disagreements;
use tvg_expressivity::wait_regular::{periodic_to_nfa, sufficient_limits};
use tvg_expressivity::TvgAutomaton;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::{Alphabet, Word};
use tvg_model::generators::{random_periodic_tvg, RandomPeriodicParams};
use tvg_model::NodeId;

fn arb_periodic_automaton() -> impl Strategy<Value = (TvgAutomaton<u64>, u64)> {
    (2usize..5, 3usize..8, 2u64..4, any::<u64>()).prop_map(
        |(nodes, edges, period, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let params = RandomPeriodicParams {
                num_nodes: nodes,
                num_edges: edges,
                period,
                phase_density: 0.4,
                alphabet: Alphabet::ab(),
            };
            let g = random_periodic_tvg(&mut StdRng::seed_from_u64(seed), &params);
            let aut = TvgAutomaton::new(
                g,
                BTreeSet::from([NodeId::from_index(0)]),
                BTreeSet::from([NodeId::from_index(nodes - 1)]),
                0,
            )
            .expect("valid");
            (aut, period)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 2.2 (periodic fragment) as a property: compiler output and
    /// journey simulation agree on every random instance and policy.
    #[test]
    fn compiled_nfa_equals_simulation(
        (aut, period) in arb_periodic_automaton(),
        policy_pick in 0usize..4,
    ) {
        let policy = match policy_pick {
            0 => WaitingPolicy::NoWait,
            1 => WaitingPolicy::Bounded(1),
            2 => WaitingPolicy::Bounded(2),
            _ => WaitingPolicy::Unbounded,
        };
        let alphabet = Alphabet::ab();
        let nfa = periodic_to_nfa(&aut, period, &policy, &alphabet).expect("periodic");
        let limits = sufficient_limits(&aut, period, 5);
        let simulated = aut.language_upto(&policy, &limits, 5);
        let compiled: BTreeSet<Word> = nfa.to_dfa().language_upto(5).into_iter().collect();
        prop_assert_eq!(simulated, compiled);
    }

    /// Theorem 2.3 as a property: zero disagreements on every random
    /// instance and bound.
    #[test]
    fn dilation_theorem_on_random_instances(
        (aut, _period) in arb_periodic_automaton(),
        d in 0u64..5,
    ) {
        let limits = SearchLimits::new(30, 5);
        let witnesses = dilation_disagreements(&aut, d, &Alphabet::ab(), 4, &limits);
        prop_assert!(witnesses.is_empty(), "{witnesses:?}");
    }

    /// Policy monotonicity of the accepted language on random instances.
    #[test]
    fn acceptance_is_monotone_in_waiting(
        (aut, period) in arb_periodic_automaton(),
        word_bits in proptest::collection::vec(0usize..2, 0..5),
    ) {
        let alphabet = Alphabet::ab();
        let w: Word = word_bits.into_iter().map(|i| alphabet.letter(i)).collect();
        let limits = sufficient_limits(&aut, period, 6);
        let nw = aut.accepts(&w, &WaitingPolicy::NoWait, &limits);
        let b2 = aut.accepts(&w, &WaitingPolicy::Bounded(2), &limits);
        let un = aut.accepts(&w, &WaitingPolicy::Unbounded, &limits);
        prop_assert!(!nw || b2, "nowait ⊆ wait[2]");
        prop_assert!(!b2 || un, "wait[2] ⊆ wait");
    }

    /// Figure 1 membership for arbitrary n and prime pairs.
    #[test]
    fn figure1_members_accepted(n in 1usize..20, pair in 0usize..3) {
        let (p, q) = [(2u64, 3u64), (3, 5), (5, 2)][pair];
        let aut = AnbnAutomaton::new(p, q).expect("distinct primes");
        prop_assert!(aut.accepts_nowait(&anbn_word(n)));
    }

    /// Figure 1 rejects every random non-member.
    #[test]
    fn figure1_nonmembers_rejected(word_bits in proptest::collection::vec(0usize..2, 0..12)) {
        let alphabet = Alphabet::ab();
        let w: Word = word_bits.into_iter().map(|i| alphabet.letter(i)).collect();
        prop_assume!(!is_anbn(&w));
        let aut = AnbnAutomaton::smallest();
        prop_assert!(!aut.accepts_nowait(&w));
    }

    /// Dilating twice composes: dilate(G, a) then (b) equals dilate by
    /// (a+1)(b+1)-1 on acceptance behavior.
    #[test]
    fn dilation_composes(
        (aut, _p) in arb_periodic_automaton(),
        a in 0u64..3,
        b in 0u64..3,
        word_bits in proptest::collection::vec(0usize..2, 0..4),
    ) {
        let alphabet = Alphabet::ab();
        let w: Word = word_bits.into_iter().map(|i| alphabet.letter(i)).collect();
        let twice = aut.dilate(a).dilate(b);
        let once = aut.dilate((a + 1) * (b + 1) - 1);
        let limits = SearchLimits::new(200, 5);
        prop_assert_eq!(
            twice.accepts(&w, &WaitingPolicy::NoWait, &limits),
            once.accepts(&w, &WaitingPolicy::NoWait, &limits)
        );
    }
}
