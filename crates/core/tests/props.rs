//! Property tests for the paper's constructions: the theorems hold on
//! randomly generated instances, not just the curated examples.
//!
//! Runs on `tvg-testkit`'s deterministic harness; random automata come
//! from `tvg_testkit::gen::periodic_automaton` and oracle deciders from
//! `tvg_testkit::oracles`.

use rand::Rng;
use std::collections::BTreeSet;
use tvg_expressivity::anbn::AnbnAutomaton;
use tvg_expressivity::dilation::dilation_disagreements;
use tvg_expressivity::wait_regular::{periodic_to_nfa, sufficient_limits};
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::{Alphabet, Word};
use tvg_testkit::gen;
use tvg_testkit::oracles::{anbn_word, is_anbn};
use tvg_testkit::Config;

/// Theorem 2.2 (periodic fragment) as a property: compiler output and
/// journey simulation agree on every random instance and policy.
#[test]
fn compiled_nfa_equals_simulation() {
    let cfg = Config::named_with_cases("compiled_nfa_equals_simulation", 32);
    tvg_testkit::check_with(cfg, |rng, _| {
        let (aut, period) = gen::periodic_automaton(rng);
        let policy = match rng.gen_range(0usize..4) {
            0 => WaitingPolicy::NoWait,
            1 => WaitingPolicy::Bounded(1),
            2 => WaitingPolicy::Bounded(2),
            _ => WaitingPolicy::Unbounded,
        };
        let alphabet = Alphabet::ab();
        let nfa = periodic_to_nfa(&aut, period, &policy, &alphabet).expect("periodic");
        let limits = sufficient_limits(&aut, period, 5);
        let simulated = aut.language_upto(&policy, &limits, 5);
        let compiled: BTreeSet<Word> = nfa.to_dfa().language_upto(5).into_iter().collect();
        assert_eq!(simulated, compiled);
    });
}

/// Theorem 2.3 as a property: zero disagreements on every random
/// instance and bound.
#[test]
fn dilation_theorem_on_random_instances() {
    let cfg = Config::named_with_cases("dilation_theorem_on_random_instances", 32);
    tvg_testkit::check_with(cfg, |rng, _| {
        let (aut, _period) = gen::periodic_automaton(rng);
        let d = rng.gen_range(0u64..5);
        let limits = SearchLimits::new(30, 5);
        let witnesses = dilation_disagreements(&aut, d, &Alphabet::ab(), 4, &limits);
        assert!(witnesses.is_empty(), "{witnesses:?}");
    });
}

/// Policy monotonicity of the accepted language on random instances.
#[test]
fn acceptance_is_monotone_in_waiting() {
    tvg_testkit::check("acceptance_is_monotone_in_waiting", |rng, _| {
        let (aut, period) = gen::periodic_automaton(rng);
        let w = gen::word(rng, &Alphabet::ab(), 4);
        let limits = sufficient_limits(&aut, period, 6);
        let nw = aut.accepts(&w, &WaitingPolicy::NoWait, &limits);
        let b2 = aut.accepts(&w, &WaitingPolicy::Bounded(2), &limits);
        let un = aut.accepts(&w, &WaitingPolicy::Unbounded, &limits);
        assert!(!nw || b2, "nowait ⊆ wait[2]");
        assert!(!b2 || un, "wait[2] ⊆ wait");
    });
}

/// Figure 1 membership for arbitrary n and prime pairs.
#[test]
fn figure1_members_accepted() {
    let cfg = Config::named_with_cases("figure1_members_accepted", 24);
    tvg_testkit::check_with(cfg, |rng, _| {
        let n = rng.gen_range(1usize..20);
        let (p, q) = [(2u64, 3u64), (3, 5), (5, 2)][rng.gen_range(0usize..3)];
        let aut = AnbnAutomaton::new(p, q).expect("distinct primes");
        assert!(aut.accepts_nowait(&anbn_word(n)));
    });
}

/// Figure 1 rejects every random non-member.
#[test]
fn figure1_nonmembers_rejected() {
    let aut = AnbnAutomaton::smallest();
    tvg_testkit::check("figure1_nonmembers_rejected", |rng, _| {
        let w = gen::word(rng, &Alphabet::ab(), 11);
        if is_anbn(&w) {
            return; // only non-members are interesting here
        }
        assert!(!aut.accepts_nowait(&w));
    });
}

/// Dilating twice composes: dilate(G, a) then (b) equals dilate by
/// (a+1)(b+1)-1 on acceptance behavior.
#[test]
fn dilation_composes() {
    let cfg = Config::named_with_cases("dilation_composes", 32);
    tvg_testkit::check_with(cfg, |rng, _| {
        let (aut, _p) = gen::periodic_automaton(rng);
        let a = rng.gen_range(0u64..3);
        let b = rng.gen_range(0u64..3);
        let w = gen::word(rng, &Alphabet::ab(), 3);
        let twice = aut.dilate(a).dilate(b);
        let once = aut.dilate((a + 1) * (b + 1) - 1);
        let limits = SearchLimits::new(200, 5);
        assert_eq!(
            twice.accepts(&w, &WaitingPolicy::NoWait, &limits),
            once.accepts(&w, &WaitingPolicy::NoWait, &limits)
        );
    });
}
