//! Theorem 2.3: `L_wait[d] = L_nowait` — bounded waiting buys nothing.
//!
//! The paper's proof idea is a *dilatation of time*: given the bound `d`,
//! expand every schedule by the factor `d + 1`. In the dilated graph
//! edges are present only at multiples of `d+1` and arrivals land on
//! multiples of `d+1`, so a pause of at most `d` can never reach the next
//! available instant: `d`-bounded journeys in the dilated graph are
//! exactly the direct journeys of the original, hence
//! `L_wait[d](dilate(G, d)) = L_nowait(G)`. Every `L_nowait` language is
//! therefore also an `L_wait[d]` language; the converse inclusion is
//! immediate (a `wait[d]` acceptor is in particular a computable
//! environment). Combined with Theorem 2.1, bounded waiting keeps the
//! full Turing power — only *unpredictable* (unbounded) waiting collapses
//! the hierarchy to regular languages.
//!
//! The dilation itself is [`tvg_model::Tvg::dilate`] /
//! [`crate::TvgAutomaton::dilate`]; this module adds the theorem harness
//! that machine-checks the equality on word samples.

use crate::TvgAutomaton;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::{Alphabet, Word};
use tvg_model::Time;

/// Compares `L_wait[d](dilate(A, d))` with `L_nowait(A)` on every word up
/// to `max_len`, returning the disagreement witnesses (empty = the
/// theorem's equality holds on the sample).
///
/// `limits` bounds the original automaton's search; the dilated side uses
/// the same limits with the horizon scaled by `d + 1`.
pub fn dilation_disagreements<T: Time>(
    aut: &TvgAutomaton<T>,
    d: u64,
    alphabet: &Alphabet,
    max_len: usize,
    limits: &SearchLimits<T>,
) -> Vec<Word> {
    let dilated = aut.dilate(d);
    let dilated_limits = SearchLimits::new(
        limits
            .horizon
            .checked_mul_u64(d + 1)
            .expect("dilated horizon overflows the time representation"),
        limits.max_hops,
    );
    let bounded = WaitingPolicy::Bounded(T::from_u64(d));
    tvg_langs::sample::words_upto(alphabet, max_len)
        .into_iter()
        .filter(|w| {
            let nowait = aut.accepts(w, &WaitingPolicy::NoWait, limits);
            let dilated_wait = dilated.accepts(w, &bounded, &dilated_limits);
            nowait != dilated_wait
        })
        .collect()
}

/// Checks that *without* dilation, `L_wait[d]` genuinely differs from
/// `L_nowait` on the sample (returns the words gained by waiting).
///
/// This is the sanity control for the theorem harness: dilation is doing
/// real work exactly when this set is nonempty for the same automaton.
pub fn waiting_gain<T: Time>(
    aut: &TvgAutomaton<T>,
    d: u64,
    alphabet: &Alphabet,
    max_len: usize,
    limits: &SearchLimits<T>,
) -> Vec<Word> {
    let bounded = WaitingPolicy::Bounded(T::from_u64(d));
    tvg_langs::sample::words_upto(alphabet, max_len)
        .into_iter()
        .filter(|w| {
            !aut.accepts(w, &WaitingPolicy::NoWait, limits) && aut.accepts(w, &bounded, limits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;
    use tvg_model::generators::{random_periodic_tvg, RandomPeriodicParams};
    use tvg_model::{Latency, NodeId, Presence, Time, TvgBuilder};

    /// Staggered two-hop graph: 'b' departs 2 units after 'a' arrives.
    fn staggered() -> TvgAutomaton<u64> {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(3);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 4,
                phases: BTreeSet::from([0]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(
            v[1],
            v[2],
            'b',
            Presence::Periodic {
                period: 4,
                phases: BTreeSet::from([3]),
            },
            Latency::unit(),
        )
        .expect("valid");
        TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[2]]),
            0,
        )
        .expect("valid")
    }

    #[test]
    fn theorem_holds_on_staggered_graph() {
        let aut = staggered();
        let limits = SearchLimits::new(40, 6);
        for d in [0u64, 1, 2, 4, 8] {
            let witnesses = dilation_disagreements(&aut, d, &Alphabet::ab(), 5, &limits);
            assert!(witnesses.is_empty(), "d={d}: {witnesses:?}");
        }
    }

    #[test]
    fn control_waiting_does_gain_without_dilation() {
        // The theorem harness is only meaningful if waiting changes this
        // automaton's language when NOT dilated.
        let aut = staggered();
        let limits = SearchLimits::new(40, 6);
        let gained = waiting_gain(&aut, 2, &Alphabet::ab(), 5, &limits);
        assert!(gained.contains(&tvg_langs::word("ab")));
        // With d=1 the pause is too short to catch phase 3 from phase 1.
        assert!(waiting_gain(&aut, 1, &Alphabet::ab(), 5, &limits).is_empty());
    }

    #[test]
    fn theorem_holds_on_random_periodic_tvgs() {
        let alphabet = Alphabet::ab();
        for seed in 0..8u64 {
            let params = RandomPeriodicParams {
                num_nodes: 4,
                num_edges: 7,
                period: 3,
                phase_density: 0.4,
                alphabet: alphabet.clone(),
            };
            let g = random_periodic_tvg(&mut StdRng::seed_from_u64(seed), &params);
            let aut = TvgAutomaton::new(
                g,
                BTreeSet::from([NodeId::from_index(0)]),
                BTreeSet::from([NodeId::from_index(3)]),
                0,
            )
            .expect("valid");
            let limits = SearchLimits::new(30, 6);
            for d in [1u64, 2, 5] {
                let witnesses = dilation_disagreements(&aut, d, &alphabet, 5, &limits);
                assert!(witnesses.is_empty(), "seed={seed} d={d}: {witnesses:?}");
            }
        }
    }

    #[test]
    fn dilated_figure1_still_accepts_anbn_under_bounded_waiting() {
        // The headline corollary: a^n b^n — non-regular — IS an L_wait[d]
        // language, via the dilated Figure-1 automaton.
        let fig1 = crate::anbn::AnbnAutomaton::smallest();
        for d in [1u64, 3] {
            for n in 1..=5usize {
                let w = crate::anbn::anbn_word(n);
                let dilated = fig1.automaton().dilate(d);
                let limits = fig1.limits_for(w.len());
                let dilated_limits = SearchLimits::new(
                    limits.horizon.checked_mul_u64(d + 1).expect("nat"),
                    limits.max_hops,
                );
                assert!(
                    dilated.accepts(
                        &w,
                        &WaitingPolicy::Bounded(tvg_bigint::Nat::from(d)),
                        &dilated_limits
                    ),
                    "d={d} n={n}"
                );
            }
            // And near-misses stay rejected.
            let w_bad = tvg_langs::word("aabbb");
            let dilated = fig1.automaton().dilate(d);
            let limits = fig1.limits_for(w_bad.len());
            let dilated_limits = SearchLimits::new(
                limits.horizon.checked_mul_u64(d + 1).expect("nat"),
                limits.max_hops,
            );
            assert!(!dilated.accepts(
                &w_bad,
                &WaitingPolicy::Bounded(tvg_bigint::Nat::from(d)),
                &dilated_limits
            ));
        }
    }

    #[test]
    fn dilation_by_zero_is_identity_on_languages() {
        let aut = staggered();
        let limits = SearchLimits::new(40, 6);
        let witnesses = dilation_disagreements(&aut, 0, &Alphabet::ab(), 5, &limits);
        assert!(witnesses.is_empty());
    }
}
