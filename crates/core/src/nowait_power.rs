//! Theorem 2.1: `L_nowait` contains every computable language.
//!
//! The construction is the paper's in spirit and mechanism: *time is the
//! memory*. Reading starts at `t = 1`. Each letter `σᵢ` (1-based digit
//! `i` in base `k+1`, `k = |Σ|`) labels a self-loop on the single working
//! node whose affine latency maps departure time `t` to arrival
//! `(k+1)·t + i` — so after reading `w`, the journey's clock holds the
//! base-(k+1) encoding of `1·w` exactly. Each letter also labels an edge
//! into the accepting node whose *presence function runs the decider*:
//! present at time `t` iff `decode(t)·σᵢ ∈ L`. A direct journey can
//! therefore reach the accepting node exactly on the words of `L`: the
//! environment (the schedule) carries the Turing computation, the
//! automaton itself is three nodes.
//!
//! "Computable" is witnessed by real deciders: plug in a closure, a
//! [`tvg_langs::Grammar`], or an actual [`tvg_langs::TuringMachine`].

use crate::TvgAutomaton;
use std::collections::BTreeSet;
use std::sync::Arc;
use tvg_bigint::Nat;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::{Alphabet, TuringMachine, Word};
use tvg_model::{Latency, Presence, Time, TvgBuilder};

/// A membership oracle: any computable characteristic function of a
/// language.
pub type Decider = Arc<dyn Fn(&Word) -> bool + Send + Sync>;

/// Encodes `w` over `alphabet` as the time value `1·d₁·d₂⋯` in base
/// `k+1`, with digit `dⱼ = index(wⱼ) + 1`. `encode(ε) = 1`.
#[must_use]
pub fn encode_word(alphabet: &Alphabet, w: &Word) -> Option<Nat> {
    let base = alphabet.len() as u64 + 1;
    let mut t = Nat::one();
    for l in w.iter() {
        let digit = alphabet.index_of(l)? as u64 + 1;
        t = t * Nat::from(base) + Nat::from(digit);
    }
    Some(t)
}

/// Decodes a time value back to the word it encodes, if it is a valid
/// encoding (digits in `1..=k`, leading marker `1`).
#[must_use]
pub fn decode_time(alphabet: &Alphabet, t: &Nat) -> Option<Word> {
    let base = alphabet.len() as u64 + 1;
    let mut cur = t.clone();
    let mut letters = Vec::new();
    loop {
        if cur.is_one() {
            letters.reverse();
            return Some(Word::from_letters(letters));
        }
        if cur.is_zero() {
            return None;
        }
        let (q, digit) = cur.div_rem_small(u32::try_from(base).expect("alphabet is small"));
        if digit == 0 {
            return None; // digit 0 never occurs in encodings
        }
        letters.push(alphabet.letter(digit as usize - 1));
        cur = q;
    }
}

/// The Theorem-2.1 automaton for an arbitrary decider.
///
/// ```
/// use std::sync::Arc;
/// use tvg_expressivity::nowait_power::DeciderAutomaton;
/// use tvg_langs::{word, Alphabet};
///
/// // The context-sensitive {aⁿbⁿcⁿ} as a no-wait TVG language.
/// let aut = DeciderAutomaton::new(
///     Alphabet::abc(),
///     Arc::new(|w: &tvg_langs::Word| {
///         let n = w.count_char('a');
///         n >= 1 && w.len() == 3 * n && w.to_string()
///             == format!("{}{}{}", "a".repeat(n), "b".repeat(n), "c".repeat(n))
///     }),
/// );
/// assert!(aut.accepts_nowait(&word("aabbcc")));
/// assert!(!aut.accepts_nowait(&word("aabbc")));
/// ```
#[derive(Clone)]
pub struct DeciderAutomaton {
    automaton: TvgAutomaton<Nat>,
    alphabet: Alphabet,
}

impl DeciderAutomaton {
    /// Builds the construction for `decider` over `alphabet`.
    #[must_use]
    pub fn new(alphabet: Alphabet, decider: Decider) -> Self {
        let k = alphabet.len() as u64;
        let mut b = TvgBuilder::<Nat>::new();
        let run = b.node("run");
        let acc = b.node("accept");
        for (i, letter) in alphabet.iter().enumerate() {
            let digit = i as u64 + 1;
            // Self-loop: clock ← (k+1)·clock + digit.
            b.edge(
                run,
                run,
                letter.as_char(),
                Presence::Always,
                Latency::Affine {
                    mul: k,
                    add: Nat::from(digit),
                },
            )
            .expect("builder-owned nodes");
            // Accepting edge: the schedule runs the decider on the word
            // that *would* be complete after this letter.
            let alpha = alphabet.clone();
            let dec = Arc::clone(&decider);
            b.edge(
                run,
                acc,
                letter.as_char(),
                Presence::from_fn(move |t: &Nat| {
                    let extended = t * Nat::from(k + 1) + Nat::from(digit);
                    decode_time(&alpha, &extended).is_some_and(|w| dec(&w))
                }),
                Latency::Const(Nat::one()),
            )
            .expect("builder-owned nodes");
        }
        let automaton = TvgAutomaton::new(
            b.build().expect("two nodes"),
            BTreeSet::from([run]),
            BTreeSet::from([acc]),
            Nat::one(),
        )
        .expect("static construction is structurally valid");
        DeciderAutomaton {
            automaton,
            alphabet,
        }
    }

    /// Builds the construction from a Turing machine with a fuel budget
    /// per membership query.
    #[must_use]
    pub fn from_turing_machine(alphabet: Alphabet, tm: TuringMachine, fuel: usize) -> Self {
        DeciderAutomaton::new(alphabet, Arc::new(move |w| tm.decide(w, fuel)))
    }

    /// The wrapped [`TvgAutomaton`].
    #[must_use]
    pub fn automaton(&self) -> &TvgAutomaton<Nat> {
        &self.automaton
    }

    /// The alphabet the encoding is based on.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Search limits sufficient for words of length `len`: the clock
    /// reaches at most `(k+1)^(len+1)`.
    #[must_use]
    pub fn limits_for(&self, len: usize) -> SearchLimits<Nat> {
        let base = self.alphabet.len() as u64 + 1;
        let horizon = Nat::from(base).pow(u32::try_from(len).unwrap_or(u32::MAX) + 2);
        SearchLimits::new(horizon, len + 1)
    }

    /// Acceptance under direct journeys: by Theorem 2.1 this equals the
    /// decider's language.
    ///
    /// Note the empty word: the construction accepts `ε` only via
    /// `initial ∩ accepting`, which is empty here, so `ε ∉ L_nowait` even
    /// if the decider says yes. This matches the paper's journey
    /// languages (a journey spells a nonempty word; the empty journey
    /// spells ε only when an initial node is accepting).
    #[must_use]
    pub fn accepts_nowait(&self, w: &Word) -> bool {
        self.automaton
            .accepts(w, &WaitingPolicy::NoWait, &self.limits_for(w.len()))
    }

    /// Acceptance under `d`-bounded waiting of the *dilated* automaton —
    /// used by the Theorem 2.3 harness.
    #[must_use]
    pub fn dilated_accepts_bounded(&self, w: &Word, d: u64) -> bool {
        let dilated = self.automaton.dilate(d);
        let inner = self.limits_for(w.len());
        let factor = d + 1;
        let horizon = inner
            .horizon
            .checked_mul_u64(factor)
            .expect("Nat multiplication cannot overflow");
        dilated.accepts(
            w,
            &WaitingPolicy::Bounded(Nat::from(d)),
            &SearchLimits::new(horizon, inner.max_hops),
        )
    }
}

impl std::fmt::Debug for DeciderAutomaton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeciderAutomaton")
            .field("alphabet", &self.alphabet)
            .field("automaton", &"<3-node TVG, decider in schedule>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_bigint::is_prime_u64;
    use tvg_langs::sample::words_upto;
    use tvg_langs::{machines, word, Grammar};

    fn check_against_reference(
        aut: &DeciderAutomaton,
        reference: impl Fn(&Word) -> bool,
        max_len: usize,
    ) {
        for w in words_upto(aut.alphabet(), max_len) {
            if w.is_empty() {
                continue; // ε: see accepts_nowait docs
            }
            assert_eq!(aut.accepts_nowait(&w), reference(&w), "{w}");
        }
    }

    #[test]
    fn encoding_roundtrip() {
        let sigma = Alphabet::abc();
        for w in words_upto(&sigma, 6) {
            let t = encode_word(&sigma, &w).expect("word over alphabet");
            assert_eq!(decode_time(&sigma, &t), Some(w));
        }
        // Invalid encodings decode to None.
        assert_eq!(decode_time(&sigma, &Nat::zero()), None);
        assert_eq!(decode_time(&sigma, &Nat::from(4u64)), None); // digit 0
        assert_eq!(decode_time(&sigma, &Nat::from(8u64)), None); // leading digit 2
    }

    #[test]
    fn encoding_is_injective() {
        let sigma = Alphabet::ab();
        let words = words_upto(&sigma, 8);
        let mut seen = std::collections::BTreeSet::new();
        for w in &words {
            assert!(seen.insert(encode_word(&sigma, w).expect("valid")), "{w}");
        }
    }

    #[test]
    fn context_free_language_anbn() {
        let g = Grammar::anbn();
        let aut = DeciderAutomaton::new(Alphabet::ab(), Arc::new(move |w| g.recognizes(w)));
        check_against_reference(&aut, |w| Grammar::anbn().recognizes(w), 10);
    }

    #[test]
    fn context_sensitive_language_anbncn() {
        let aut =
            DeciderAutomaton::from_turing_machine(Alphabet::abc(), machines::anbncn(), 100_000);
        let tm = machines::anbncn();
        check_against_reference(&aut, |w| tm.decide(w, 100_000), 7);
    }

    #[test]
    fn palindromes_via_turing_machine() {
        let aut =
            DeciderAutomaton::from_turing_machine(Alphabet::ab(), machines::palindrome(), 100_000);
        check_against_reference(&aut, |w| *w == w.reversed(), 8);
    }

    #[test]
    fn unary_primes() {
        let aut = DeciderAutomaton::new(
            Alphabet::from_chars("a").expect("valid"),
            Arc::new(|w| is_prime_u64(w.len() as u64)),
        );
        check_against_reference(&aut, |w| is_prime_u64(w.len() as u64), 24);
    }

    #[test]
    fn unary_squares() {
        let aut = DeciderAutomaton::new(
            Alphabet::from_chars("a").expect("valid"),
            Arc::new(|w| {
                let n = w.len() as u64;
                let r = (n as f64).sqrt().round() as u64;
                r * r == n
            }),
        );
        check_against_reference(
            &aut,
            |w| {
                let n = w.len() as u64;
                let r = (n as f64).sqrt().round() as u64;
                r * r == n
            },
            20,
        );
    }

    #[test]
    fn dyck_language() {
        let g = Grammar::dyck1();
        let aut = DeciderAutomaton::new(Alphabet::ab(), Arc::new(move |w| g.recognizes(w)));
        check_against_reference(&aut, |w| Grammar::dyck1().recognizes(w), 9);
    }

    #[test]
    fn long_words_beyond_machine_range() {
        let g = Grammar::anbn();
        let aut = DeciderAutomaton::new(Alphabet::ab(), Arc::new(move |w| g.recognizes(w)));
        // Length 80: clock reaches 3^81 ≈ 10^38.
        let w = crate::anbn::anbn_word(40);
        assert!(aut.accepts_nowait(&w));
        let w_bad = word(&format!("{}{}", "a".repeat(40), "b".repeat(41)));
        assert!(!aut.accepts_nowait(&w_bad));
    }

    #[test]
    fn nowait_is_essential_here() {
        // Under unbounded waiting, this TVG accepts MORE than L: waiting
        // at "run" lets the clock drift to other encodings? No — the clock
        // only advances by crossing edges; waiting delays departure, and a
        // late self-loop departure computes (k+1)t'+i for t' > t, jumping
        // to the encoding of a different prefix. The language changes; by
        // Theorem 2.2 it becomes regular. We verify it differs from aⁿbⁿ.
        let g = Grammar::anbn();
        let aut = DeciderAutomaton::new(Alphabet::ab(), Arc::new(move |w| g.recognizes(w)));
        let limits = SearchLimits::new(Nat::from(200u64), 4);
        // "ba" ∉ aⁿbⁿ: with waiting the b-accept edge can fire from a
        // drifted clock encoding "ab" after reading just "b"? The decider
        // gates on decode(t'·3+2) ∈ L — a drifted t' = 2 (= encode("a"))
        // makes the accept edge fire on reading 'b' with word "b" only.
        // So "b" alone may be accepted with waiting. Confirm some word
        // outside L is accepted.
        let gained = words_upto(&Alphabet::ab(), 3)
            .into_iter()
            .filter(|w| !w.is_empty())
            .any(|w| {
                !crate::anbn::is_anbn(&w)
                    && aut
                        .automaton()
                        .accepts(&w, &WaitingPolicy::Unbounded, &limits)
            });
        assert!(gained);
    }
}
