//! TVG-automata: time-varying graphs as language acceptors.
//!
//! Per the paper, a TVG `G` with edge labels over `Σ` induces an
//! automaton `A(G) = (Σ, S, I, E, F)` whose states are the nodes and
//! whose transitions `(s, t, a, s', t')` exist exactly when an `a`-labeled
//! edge from `s` to `s'` is present at `t` with latency `t' − t`. A word
//! is accepted when some feasible journey from an initial to an accepting
//! node spells it; *which* journeys are feasible is the waiting policy,
//! and the language `L_f(G)` varies with it — that variation is the
//! paper's subject.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use tvg_journeys::language::{journey_language, read_word, ConfigSet};
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::Word;
use tvg_model::{NodeId, Time, Tvg};

/// Errors from assembling a [`TvgAutomaton`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomatonError {
    /// An initial or accepting node id is out of range for the graph.
    UnknownNode(NodeId),
    /// No initial states were given.
    NoInitialStates,
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::UnknownNode(n) => write!(f, "automaton references unknown node {n}"),
            AutomatonError::NoInitialStates => {
                write!(f, "automaton needs at least one initial state")
            }
        }
    }
}

impl Error for AutomatonError {}

/// A TVG-automaton: a labeled TVG with initial states, accepting states,
/// and a start-of-reading instant.
///
/// ```
/// use std::collections::BTreeSet;
/// use tvg_expressivity::TvgAutomaton;
/// use tvg_journeys::{SearchLimits, WaitingPolicy};
/// use tvg_langs::word;
/// use tvg_model::{Latency, Presence, TvgBuilder};
///
/// let mut b = TvgBuilder::<u64>::new();
/// let v = b.nodes(2);
/// b.edge(v[0], v[1], 'a', Presence::At(3), Latency::unit())?;
/// let aut = TvgAutomaton::new(
///     b.build()?,
///     BTreeSet::from([v[0]]),
///     BTreeSet::from([v[1]]),
///     0,
/// )?;
/// let limits = SearchLimits::new(10, 4);
/// // "a" departs at 3, but reading starts at 0: only waiting accepts.
/// assert!(!aut.accepts(&word("a"), &WaitingPolicy::NoWait, &limits));
/// assert!(aut.accepts(&word("a"), &WaitingPolicy::Unbounded, &limits));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TvgAutomaton<T> {
    tvg: Tvg<T>,
    initial: BTreeSet<NodeId>,
    accepting: BTreeSet<NodeId>,
    start_time: T,
}

impl<T: Time> TvgAutomaton<T> {
    /// Builds an automaton over `tvg`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomatonError`] if a state set references nodes outside
    /// the graph or `initial` is empty.
    pub fn new(
        tvg: Tvg<T>,
        initial: BTreeSet<NodeId>,
        accepting: BTreeSet<NodeId>,
        start_time: T,
    ) -> Result<Self, AutomatonError> {
        if initial.is_empty() {
            return Err(AutomatonError::NoInitialStates);
        }
        for &n in initial.iter().chain(accepting.iter()) {
            if n.index() >= tvg.num_nodes() {
                return Err(AutomatonError::UnknownNode(n));
            }
        }
        Ok(TvgAutomaton {
            tvg,
            initial,
            accepting,
            start_time,
        })
    }

    /// The underlying time-varying graph.
    #[must_use]
    pub fn tvg(&self) -> &Tvg<T> {
        &self.tvg
    }

    /// The initial states `I`.
    #[must_use]
    pub fn initial(&self) -> &BTreeSet<NodeId> {
        &self.initial
    }

    /// The accepting states `F`.
    #[must_use]
    pub fn accepting(&self) -> &BTreeSet<NodeId> {
        &self.accepting
    }

    /// The instant reading starts.
    #[must_use]
    pub fn start_time(&self) -> &T {
        &self.start_time
    }

    /// The initial configuration set: every initial node at the start
    /// instant.
    #[must_use]
    pub fn initial_configs(&self) -> ConfigSet<T> {
        self.initial
            .iter()
            .map(|&n| (n, self.start_time.clone()))
            .collect()
    }

    /// Whether `A(G)` accepts `word` when journeys follow `policy`.
    ///
    /// Exact within `limits` (departures beyond `limits.horizon` or
    /// journeys longer than `limits.max_hops` are not explored — callers
    /// size the limits to the word, see e.g. the Figure-1 wrapper).
    #[must_use]
    pub fn accepts(
        &self,
        word: &Word,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
    ) -> bool {
        tvg_journeys::language::spells(
            &self.tvg,
            &self.initial_configs(),
            word,
            &self.accepting,
            policy,
            limits,
        )
    }

    /// The configuration sets after each prefix of `word` — a run trace
    /// for display and debugging.
    #[must_use]
    pub fn trace(
        &self,
        word: &Word,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
    ) -> Vec<ConfigSet<T>> {
        let mut out = Vec::with_capacity(word.len() + 1);
        let mut configs = self.initial_configs();
        out.push(configs.clone());
        for i in 0..word.len() {
            configs = read_word(
                &self.tvg,
                &configs,
                &Word::from_letters(vec![word.get(i).expect("index in range")]),
                policy,
                limits,
            );
            out.push(configs.clone());
        }
        out
    }

    /// The sampled language `L_f(G)` up to `max_len`.
    #[must_use]
    pub fn language_upto(
        &self,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        max_len: usize,
    ) -> BTreeSet<Word> {
        journey_language(
            &self.tvg,
            &self.initial_configs(),
            &self.accepting,
            policy,
            limits,
            max_len,
        )
    }

    /// Checks whether the automaton behaves *deterministically* on every
    /// word up to `max_len` under `policy`: after each prefix at most one
    /// configuration is live.
    ///
    /// The paper notes Figure 1 is a deterministic TVG-automaton; this
    /// verifies such claims mechanically. Exponential in `max_len` over
    /// the label alphabet.
    #[must_use]
    pub fn is_deterministic_upto(
        &self,
        policy: &WaitingPolicy<T>,
        limits: &SearchLimits<T>,
        max_len: usize,
    ) -> bool {
        let Some(alphabet) = tvg_journeys::language::label_alphabet(&self.tvg) else {
            return true;
        };
        let mut frontier: Vec<ConfigSet<T>> = vec![self.initial_configs()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for configs in &frontier {
                if configs.len() > 1 {
                    return false;
                }
                for letter in alphabet.iter() {
                    let stepped = tvg_journeys::language::step_configs(
                        &self.tvg, configs, letter, policy, limits,
                    );
                    if stepped.len() > 1 {
                        return false;
                    }
                    if !stepped.is_empty() {
                        next.push(stepped);
                    }
                }
            }
            if next.is_empty() {
                return true;
            }
            frontier = next;
        }
        true
    }

    /// Dilates every schedule and the start instant by `d + 1`
    /// (Theorem 2.3's transformation; see the `dilation` module for the
    /// theorem harness).
    ///
    /// # Panics
    ///
    /// Panics if the dilated start time overflows the representation.
    #[must_use]
    pub fn dilate(&self, d: u64) -> TvgAutomaton<T> {
        let factor = d.checked_add(1).expect("dilation bound too large");
        TvgAutomaton {
            tvg: self.tvg.dilate(d),
            initial: self.initial.clone(),
            accepting: self.accepting.clone(),
            start_time: self
                .start_time
                .checked_mul_u64(factor)
                .expect("dilated start time overflows"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_langs::word;
    use tvg_model::{Latency, Presence, TvgBuilder};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// v0 --a@1--> v1 --b@5--> v2 (accepting).
    fn gap_automaton() -> TvgAutomaton<u64> {
        let mut b = TvgBuilder::new();
        let v = b.nodes(3);
        b.edge(v[0], v[1], 'a', Presence::At(1u64), Latency::unit())
            .expect("valid");
        b.edge(v[1], v[2], 'b', Presence::At(5u64), Latency::unit())
            .expect("valid");
        TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[2]]),
            1,
        )
        .expect("valid")
    }

    fn limits() -> SearchLimits<u64> {
        SearchLimits::new(20, 8)
    }

    #[test]
    fn acceptance_varies_with_policy() {
        let aut = gap_automaton();
        let w = word("ab");
        assert!(!aut.accepts(&w, &WaitingPolicy::NoWait, &limits()));
        assert!(!aut.accepts(&w, &WaitingPolicy::Bounded(2), &limits()));
        assert!(aut.accepts(&w, &WaitingPolicy::Bounded(3), &limits()));
        assert!(aut.accepts(&w, &WaitingPolicy::Unbounded, &limits()));
    }

    #[test]
    fn languages_differ_by_policy() {
        let aut = gap_automaton();
        assert!(aut
            .language_upto(&WaitingPolicy::NoWait, &limits(), 3)
            .is_empty());
        assert_eq!(
            aut.language_upto(&WaitingPolicy::Unbounded, &limits(), 3),
            BTreeSet::from([word("ab")])
        );
    }

    #[test]
    fn trace_exposes_configurations() {
        let aut = gap_automaton();
        let trace = aut.trace(&word("ab"), &WaitingPolicy::Unbounded, &limits());
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0], ConfigSet::from([(n(0), 1u64)]));
        assert_eq!(trace[1], ConfigSet::from([(n(1), 2u64)]));
        assert_eq!(trace[2], ConfigSet::from([(n(2), 6u64)]));
        // A rejected run has an empty tail.
        let dead = aut.trace(&word("ab"), &WaitingPolicy::NoWait, &limits());
        assert!(dead[2].is_empty());
    }

    #[test]
    fn validation_errors() {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(1);
        let g = b.build().expect("valid");
        assert_eq!(
            TvgAutomaton::new(g.clone(), BTreeSet::new(), BTreeSet::new(), 0).unwrap_err(),
            AutomatonError::NoInitialStates
        );
        let ghost = NodeId::from_index(9);
        assert_eq!(
            TvgAutomaton::new(g, BTreeSet::from([v[0]]), BTreeSet::from([ghost]), 0).unwrap_err(),
            AutomatonError::UnknownNode(ghost)
        );
    }

    #[test]
    fn empty_word_accepted_iff_initial_meets_accepting() {
        let aut = gap_automaton();
        assert!(!aut.accepts(&Word::empty(), &WaitingPolicy::NoWait, &limits()));

        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(1);
        let aut2 = TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[0]]),
            0,
        )
        .expect("valid");
        assert!(aut2.accepts(&Word::empty(), &WaitingPolicy::NoWait, &limits()));
    }

    #[test]
    fn dilation_scales_start_time() {
        let aut = gap_automaton();
        let dilated = aut.dilate(3);
        assert_eq!(*dilated.start_time(), 4); // 1 · (3+1)
        assert_eq!(dilated.initial(), aut.initial());
        assert_eq!(dilated.accepting(), aut.accepting());
    }
}
