//! The paper's Figure 1 + Table 1: a TVG-automaton whose *no-wait*
//! language is the context-free, non-regular `{aⁿbⁿ : n ≥ 1}`.
//!
//! Structure (p, q distinct primes > 1; reading starts at `t = 1`):
//!
//! | edge | from → to | label | presence `ρ(e,t)=1` iff | latency `ζ(e,t)` |
//! |------|-----------|-------|--------------------------|------------------|
//! | `e0` | v0 → v0   | a     | always                   | `(p−1)t`         |
//! | `e1` | v0 → v1   | b     | `t > p`                  | `(q−1)t`         |
//! | `e2` | v1 → v1   | b     | `t ≠ pⁱqⁱ⁻¹, i > 1`      | `(q−1)t`         |
//! | `e3` | v0 → v2   | b     | `t = p`                  | any (here 1)     |
//! | `e4` | v1 → v2   | b     | `t = pⁱqⁱ⁻¹, i > 1`      | any (here 1)     |
//!
//! Crossing `e0` at time `t` arrives at `pt`, so after `aⁿ` the journey
//! sits at `v0` at time `pⁿ` — time *is* the counter. The `b`-edges
//! multiply by `q`, and the accepting edge `e4` opens exactly when the
//! counter shows `pⁿqⁿ⁻¹`, i.e. after exactly `n − 1` further `b`s; `e3`
//! handles `n = 1`. Times grow like `pⁿqⁿ`, which is why this module
//! works over [`Nat`].

use crate::TvgAutomaton;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use tvg_bigint::Nat;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::Word;
use tvg_model::{Latency, Presence, TvgBuilder};

/// Errors from instantiating the Figure-1 construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnbnError {
    /// `p` and `q` must be distinct.
    PrimesNotDistinct,
    /// A parameter is not a prime greater than 1.
    NotPrime(u64),
}

impl fmt::Display for AnbnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnbnError::PrimesNotDistinct => write!(f, "p and q must be distinct primes"),
            AnbnError::NotPrime(v) => write!(f, "{v} is not a prime greater than 1"),
        }
    }
}

impl Error for AnbnError {}

/// The Figure-1 automaton, wrapped with correctly-sized search limits.
///
/// ```
/// use tvg_expressivity::anbn::AnbnAutomaton;
/// use tvg_langs::word;
///
/// let aut = AnbnAutomaton::new(2, 3)?;
/// assert!(aut.accepts_nowait(&word("aaabbb")));
/// assert!(!aut.accepts_nowait(&word("aabbb")));
/// # Ok::<(), tvg_expressivity::anbn::AnbnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AnbnAutomaton {
    automaton: TvgAutomaton<Nat>,
    p: u64,
    q: u64,
}

impl AnbnAutomaton {
    /// Builds the construction for distinct primes `p, q > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`AnbnError`] if the parameters are not distinct primes.
    pub fn new(p: u64, q: u64) -> Result<Self, AnbnError> {
        if p == q {
            return Err(AnbnError::PrimesNotDistinct);
        }
        for v in [p, q] {
            if !tvg_bigint::is_prime_u64(v) {
                return Err(AnbnError::NotPrime(v));
            }
        }
        let mut b = TvgBuilder::<Nat>::new();
        let v0 = b.node("v0");
        let v1 = b.node("v1");
        let v2 = b.node("v2");
        let pn = Nat::from(p);
        // e0: a-loop multiplying time by p.
        b.edge(
            v0,
            v0,
            'a',
            Presence::Always,
            Latency::Affine {
                mul: p - 1,
                add: Nat::zero(),
            },
        )
        .expect("builder-owned nodes");
        // e1: first b (n ≥ 2), multiplying time by q.
        b.edge(
            v0,
            v1,
            'b',
            Presence::After(pn.clone()),
            Latency::Affine {
                mul: q - 1,
                add: Nat::zero(),
            },
        )
        .expect("builder-owned nodes");
        // e2: middle bs, blocked exactly at t = p^i q^(i-1).
        b.edge(
            v1,
            v1,
            'b',
            Presence::Not(Box::new(Presence::PqPower { p, q })),
            Latency::Affine {
                mul: q - 1,
                add: Nat::zero(),
            },
        )
        .expect("builder-owned nodes");
        // e3: the n = 1 accept ("ab"): only at t = p.
        b.edge(v0, v2, 'b', Presence::At(pn), Latency::Const(Nat::one()))
            .expect("builder-owned nodes");
        // e4: the final b, open exactly at t = p^i q^(i-1), i > 1.
        b.edge(
            v1,
            v2,
            'b',
            Presence::PqPower { p, q },
            Latency::Const(Nat::one()),
        )
        .expect("builder-owned nodes");
        let automaton = TvgAutomaton::new(
            b.build().expect("three nodes"),
            BTreeSet::from([v0]),
            BTreeSet::from([v2]),
            Nat::one(),
        )
        .expect("static construction is structurally valid");
        Ok(AnbnAutomaton { automaton, p, q })
    }

    /// The construction with the paper's smallest parameters `p=2, q=3`.
    #[must_use]
    pub fn smallest() -> Self {
        AnbnAutomaton::new(2, 3).expect("2 and 3 are distinct primes")
    }

    /// The wrapped [`TvgAutomaton`].
    #[must_use]
    pub fn automaton(&self) -> &TvgAutomaton<Nat> {
        &self.automaton
    }

    /// The prime `p`.
    #[must_use]
    pub fn p(&self) -> u64 {
        self.p
    }

    /// The prime `q`.
    #[must_use]
    pub fn q(&self) -> u64 {
        self.q
    }

    /// Search limits sufficient for words of length `len`: departures
    /// reach at most `(pq)^len`.
    #[must_use]
    pub fn limits_for(&self, len: usize) -> SearchLimits<Nat> {
        let horizon = Nat::from(self.p * self.q).pow(u32::try_from(len).unwrap_or(u32::MAX) + 1);
        SearchLimits::new(horizon, len + 1)
    }

    /// Acceptance under direct journeys — the paper's
    /// `L_nowait(G) = {aⁿbⁿ : n ≥ 1}`.
    #[must_use]
    pub fn accepts_nowait(&self, w: &Word) -> bool {
        self.automaton
            .accepts(w, &WaitingPolicy::NoWait, &self.limits_for(w.len()))
    }

    /// Acceptance under `d`-bounded waiting (used by the Theorem 2.3
    /// experiments).
    #[must_use]
    pub fn accepts_bounded(&self, w: &Word, d: u64) -> bool {
        self.automaton.accepts(
            w,
            &WaitingPolicy::Bounded(Nat::from(d)),
            &self.limits_for(w.len()),
        )
    }

    /// The accepting run's time trace for `aⁿbⁿ`: the sequence of times
    /// at which each prefix is read (for display; `None` for rejected
    /// words).
    #[must_use]
    pub fn nowait_trace(&self, w: &Word) -> Option<Vec<(String, Nat)>> {
        let limits = self.limits_for(w.len());
        let trace = self.automaton.trace(w, &WaitingPolicy::NoWait, &limits);
        if trace.last().is_none_or(|cfgs| {
            !cfgs
                .iter()
                .any(|(n, _)| self.automaton.accepting().contains(n))
        }) {
            return None;
        }
        Some(
            trace
                .into_iter()
                .map(|cfgs| {
                    let (n, t) = cfgs
                        .into_iter()
                        .next()
                        .expect("accepting trace has nonempty configs");
                    (self.automaton.tvg().node_name(n).to_string(), t)
                })
                .collect(),
        )
    }
}

/// Reference decider for `{aⁿbⁿ : n ≥ 1}`.
#[must_use]
pub fn is_anbn(w: &Word) -> bool {
    let n = w.count_char('a');
    n >= 1
        && w.len() == 2 * n
        && w.iter().take(n).all(|l| l.as_char() == 'a')
        && w.iter().skip(n).all(|l| l.as_char() == 'b')
}

/// The word `aⁿbⁿ`.
#[must_use]
pub fn anbn_word(n: usize) -> Word {
    format!("{}{}", "a".repeat(n), "b".repeat(n))
        .parse()
        .expect("ascii letters")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_langs::sample::words_upto;
    use tvg_langs::{word, Alphabet};

    #[test]
    fn parameters_validated() {
        assert_eq!(
            AnbnAutomaton::new(2, 2).unwrap_err(),
            AnbnError::PrimesNotDistinct
        );
        assert_eq!(
            AnbnAutomaton::new(4, 3).unwrap_err(),
            AnbnError::NotPrime(4)
        );
        assert_eq!(
            AnbnAutomaton::new(2, 1).unwrap_err(),
            AnbnError::NotPrime(1)
        );
        assert!(AnbnAutomaton::new(5, 7).is_ok());
    }

    #[test]
    fn exhaustive_language_check_small() {
        // The headline claim of Figure 1, machine-checked on every word of
        // length ≤ 10 over {a,b}.
        let aut = AnbnAutomaton::smallest();
        for w in words_upto(&Alphabet::ab(), 10) {
            assert_eq!(aut.accepts_nowait(&w), is_anbn(&w), "{w}");
        }
    }

    #[test]
    fn long_members_accepted_beyond_machine_range() {
        let aut = AnbnAutomaton::smallest();
        // n = 45: times reach 2^45 · 3^45 ≈ 10^35 — far beyond u64.
        assert!(aut.accepts_nowait(&anbn_word(45)));
    }

    #[test]
    fn long_near_misses_rejected() {
        let aut = AnbnAutomaton::smallest();
        let mut long = anbn_word(30);
        assert!(aut.accepts_nowait(&long));
        long.push(tvg_langs::Letter::new('b').expect("ascii"));
        assert!(!aut.accepts_nowait(&long)); // a^30 b^31
        assert!(!aut.accepts_nowait(&word(&format!("{}{}", "a".repeat(31), "b".repeat(30)))));
    }

    #[test]
    fn other_prime_pairs_give_same_language() {
        for (p, q) in [(3, 2), (2, 5), (5, 3), (7, 11)] {
            let aut = AnbnAutomaton::new(p, q).expect("distinct primes");
            for w in words_upto(&Alphabet::ab(), 7) {
                assert_eq!(aut.accepts_nowait(&w), is_anbn(&w), "p={p} q={q} {w}");
            }
        }
    }

    #[test]
    fn trace_of_accepting_run_shows_time_counter() {
        let aut = AnbnAutomaton::smallest();
        let trace = aut.nowait_trace(&anbn_word(3)).expect("a³b³ accepted");
        // Times: 1 →(a) 2 →(a) 4 →(a) 8 →(b,e1) 24 →(b,e2) 72 →(b,e4) 73.
        let times: Vec<String> = trace.iter().map(|(_, t)| t.to_string()).collect();
        assert_eq!(times, vec!["1", "2", "4", "8", "24", "72", "73"]);
        assert_eq!(trace.last().expect("nonempty").0, "v2");
        assert!(aut.nowait_trace(&word("ab")).is_some());
        assert!(aut.nowait_trace(&word("ba")).is_none());
    }

    #[test]
    fn figure1_is_deterministic_as_the_paper_says() {
        // "Figure 1 shows an example of a deterministic TVG-automaton":
        // under direct journeys at most one configuration is ever live.
        let aut = AnbnAutomaton::smallest();
        assert!(aut.automaton().is_deterministic_upto(
            &WaitingPolicy::NoWait,
            &aut.limits_for(8),
            8
        ));
        // Under waiting the same graph is nondeterministic (choices of
        // departure time multiply configurations).
        let small = SearchLimits::new(Nat::from(50u64), 4);
        assert!(!aut
            .automaton()
            .is_deterministic_upto(&WaitingPolicy::Unbounded, &small, 3));
    }

    #[test]
    fn n_equals_one_uses_e3() {
        let aut = AnbnAutomaton::smallest();
        assert!(aut.accepts_nowait(&word("ab")));
        assert!(!aut.accepts_nowait(&word("a")));
        assert!(!aut.accepts_nowait(&word("b")));
        assert!(!aut.accepts_nowait(&Word::empty()));
    }

    #[test]
    fn waiting_changes_the_language() {
        // With unbounded waiting the same TVG accepts more than aⁿbⁿ —
        // e.g. "abb": read a at t=1 (arrive 2), wait and take e1 at t=3
        // (arrive 9), wait at v1 until t=12 = 2³·3¹? No — 12 = 2²·3, i=2:
        // e4 is present, arrive v2. The exact waiting language is regular
        // (Theorem 2.2); here we just confirm it differs from aⁿbⁿ.
        let aut = AnbnAutomaton::smallest();
        let w = word("abb");
        let limits = SearchLimits::new(Nat::from(100u64), 6);
        let accepted_waiting = aut
            .automaton()
            .accepts(&w, &WaitingPolicy::Unbounded, &limits);
        assert!(accepted_waiting);
        assert!(!is_anbn(&w));
    }
}
