//! Theorem 2.2: `L_wait` is exactly the set of regular languages.
//!
//! The paper's proof is algebraic (a well-quasi-order on words plus the
//! Harju–Ilie criterion) and non-constructive. This module reproduces the
//! theorem as executable mathematics from both sides:
//!
//! * **Regular ⊆ `L_wait`** — [`dfa_to_tvg_automaton`] embeds any DFA as a
//!   TVG with `Always`/unit schedules; with such schedules direct and
//!   indirect journeys coincide, so every regular language is a waiting
//!   language (in fact under *every* policy).
//! * **`L_wait` ⊆ Regular, periodic class** — [`periodic_to_nfa`] compiles
//!   a TVG-automaton with periodic presence and constant latencies into an
//!   NFA over `(node, phase)` states. The abstraction is exact: with
//!   period-`P` schedules and constant latencies, a configuration's future
//!   depends only on its node and `t mod P`, and under waiting every
//!   future phase is reachable. One compiler serves all three policies —
//!   which is itself a reproduction of the theorems' *hierarchy*:
//!   on the periodic class even `L_nowait` is regular, so the Turing
//!   power of Theorem 2.1 comes precisely from aperiodic computable
//!   schedules like Figure 1's prime powers.
//! * **Beyond periodic** — `tvg_langs::myhill` residual analysis provides
//!   regularity *evidence* on sampled languages (saturating residual
//!   counts for `L_wait`, unbounded growth for the `L_nowait` witnesses);
//!   see experiment E3.

use crate::TvgAutomaton;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::{Alphabet, Dfa, Nfa};
use tvg_model::{EdgeId, Latency, Presence, TvgBuilder};

/// Errors from compiling a TVG-automaton to an NFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The period must be nonzero.
    ZeroPeriod,
    /// An edge's latency is not a constant (e.g. affine in `t`).
    NonConstantLatency(EdgeId),
    /// An edge's presence cannot be expressed as a phase set modulo the
    /// period (aperiodic or custom schedule, or mismatched sub-period).
    NonPeriodicPresence(EdgeId),
    /// An edge label is missing from the supplied alphabet.
    LabelOutsideAlphabet(char),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ZeroPeriod => write!(f, "period must be nonzero"),
            CompileError::NonConstantLatency(e) => {
                write!(f, "edge {e} has a non-constant latency")
            }
            CompileError::NonPeriodicPresence(e) => {
                write!(
                    f,
                    "edge {e} has a presence not periodic with the given period"
                )
            }
            CompileError::LabelOutsideAlphabet(c) => {
                write!(f, "edge label {c:?} is outside the supplied alphabet")
            }
        }
    }
}

impl Error for CompileError {}

/// Extracts the exact phase set of `presence` modulo `period`, or `None`
/// if the schedule is not structurally periodic with that period.
fn phase_set(presence: &Presence<u64>, period: u64) -> Option<BTreeSet<u64>> {
    match presence {
        Presence::Always => Some((0..period).collect()),
        Presence::Never => Some(BTreeSet::new()),
        Presence::Periodic { period: p0, phases } => {
            if *p0 == 0 || !period.is_multiple_of(*p0) {
                return None;
            }
            let mut out = BTreeSet::new();
            for rep in 0..(period / p0) {
                for &ph in phases {
                    out.insert(rep * p0 + (ph % p0));
                }
            }
            Some(out)
        }
        Presence::Not(inner) => {
            let inner = phase_set(inner, period)?;
            Some((0..period).filter(|ph| !inner.contains(ph)).collect())
        }
        Presence::And(a, b) => {
            let (a, b) = (phase_set(a, period)?, phase_set(b, period)?);
            Some(a.intersection(&b).copied().collect())
        }
        Presence::Or(a, b) => {
            let (a, b) = (phase_set(a, period)?, phase_set(b, period)?);
            Some(a.union(&b).copied().collect())
        }
        // At/After/Before/Window/FiniteSet are eventually constant, not
        // periodic; Dilated/PqPower/Custom are aperiodic or opaque.
        _ => None,
    }
}

/// Compiles a periodic TVG-automaton into an NFA recognizing `L_f(G)`.
///
/// Preconditions: every presence must be structurally periodic with
/// `period` (see [`CompileError::NonPeriodicPresence`]) and every latency
/// constant. NFA states are `(node, t mod period)` pairs.
///
/// # Errors
///
/// Returns a [`CompileError`] naming the first offending edge.
pub fn periodic_to_nfa(
    aut: &TvgAutomaton<u64>,
    period: u64,
    policy: &WaitingPolicy<u64>,
    alphabet: &Alphabet,
) -> Result<Nfa, CompileError> {
    if period == 0 {
        return Err(CompileError::ZeroPeriod);
    }
    let g = aut.tvg();
    let p = period;
    let n = g.num_nodes();
    let state = |node: usize, phase: u64| node * (p as usize) + phase as usize;

    let mut nfa = Nfa::new(alphabet.clone(), n * p as usize);
    for &v0 in aut.initial() {
        nfa.add_start(state(v0.index(), aut.start_time() % p))
            .expect("state in range");
    }
    for &f in aut.accepting() {
        for phase in 0..p {
            nfa.add_accepting(state(f.index(), phase))
                .expect("state in range");
        }
    }

    for e in g.edges() {
        let edge = g.edge(e);
        let Latency::Const(ell) = edge.latency() else {
            return Err(CompileError::NonConstantLatency(e));
        };
        let phases = phase_set(edge.presence(), p).ok_or(CompileError::NonPeriodicPresence(e))?;
        let label = edge.label().as_char();
        if alphabet.index_of_char(label).is_none() {
            return Err(CompileError::LabelOutsideAlphabet(label));
        }
        let (u, v) = (edge.src().index(), edge.dst().index());
        for phase in 0..p {
            // Departure phases admissible from a node readied at `phase`.
            let departures: Box<dyn Iterator<Item = u64>> = match policy {
                WaitingPolicy::NoWait => Box::new(std::iter::once(phase)),
                WaitingPolicy::Bounded(d) => {
                    let span = (*d).min(p - 1);
                    Box::new((0..=span).map(move |j| (phase + j) % p))
                }
                WaitingPolicy::Unbounded => Box::new(0..p),
            };
            for dep in departures {
                if phases.contains(&dep) {
                    let arr = (dep + ell) % p;
                    nfa.add_transition(state(u, phase), Some(label), state(v, arr))
                        .expect("states in range, label in alphabet");
                }
            }
        }
    }
    Ok(nfa)
}

/// Search limits guaranteed sufficient for comparing a periodic automaton
/// against its compiled NFA on words up to `max_len`: every needed
/// departure happens within one period of becoming ready.
#[must_use]
pub fn sufficient_limits(
    aut: &TvgAutomaton<u64>,
    period: u64,
    max_len: usize,
) -> SearchLimits<u64> {
    let max_latency = aut
        .tvg()
        .edges()
        .map(|e| match aut.tvg().edge(e).latency() {
            Latency::Const(c) => *c,
            _ => period,
        })
        .max()
        .unwrap_or(1);
    let horizon = aut.start_time() + (max_len as u64 + 1) * (period + max_latency);
    SearchLimits::new(horizon, max_len + 1)
}

/// Returns a bound `T₀` such that `presence` is `period`-periodic on
/// `[T₀, ∞)`, or `None` for schedules with no such structural bound.
fn transient_bound(presence: &Presence<u64>, period: u64) -> Option<u64> {
    match presence {
        Presence::Always | Presence::Never => Some(0),
        Presence::At(c) | Presence::After(c) | Presence::Before(c) => Some(c + 1),
        Presence::Window { until, .. } => Some(until + 1),
        Presence::FiniteSet(set) => Some(set.iter().max().map_or(0, |m| m + 1)),
        Presence::Periodic { period: p0, .. } => {
            (*p0 != 0 && period.is_multiple_of(*p0)).then_some(0)
        }
        Presence::Not(inner) => transient_bound(inner, period),
        Presence::And(a, b) | Presence::Or(a, b) => {
            Some(transient_bound(a, period)?.max(transient_bound(b, period)?))
        }
        Presence::Dilated { factor, inner } => {
            // Inner is p-periodic beyond T₀ ⟹ dilated is (factor·p)-periodic
            // beyond factor·T₀ — require the caller's period to absorb it.
            if !period.is_multiple_of(*factor) {
                return None;
            }
            let inner_t0 = transient_bound(inner, period / factor)?;
            inner_t0.checked_mul(*factor)
        }
        Presence::PqPower { .. } | Presence::Custom(_) => None,
    }
}

/// Compiles a TVG-automaton with *eventually periodic* schedules into an
/// NFA — the Theorem 2.2 compiler extended past [`periodic_to_nfa`] to
/// schedules with a transient prefix (`At`, `After`, `Before`, `Window`,
/// `FiniteSet`, and boolean/dilation combinations thereof).
///
/// States are explicit `(node, t)` configurations for `t < T₀` (the
/// structural bound after which every schedule is `period`-periodic) plus
/// `(node, phase)` states for the periodic tail; the abstraction is exact
/// for constant latencies. State count scales with `T₀ + period` per
/// node, so schedules with large constants produce large automata.
///
/// # Errors
///
/// Returns a [`CompileError`] naming the first offending edge (aperiodic
/// or opaque presence, non-constant latency) or a zero period.
pub fn eventually_periodic_to_nfa(
    aut: &TvgAutomaton<u64>,
    period: u64,
    policy: &WaitingPolicy<u64>,
    alphabet: &Alphabet,
) -> Result<Nfa, CompileError> {
    if period == 0 {
        return Err(CompileError::ZeroPeriod);
    }
    let g = aut.tvg();
    let p = period;

    // Per-edge validation + the global transient bound.
    let mut t0 = aut.start_time() + 1;
    let mut edge_info: Vec<(usize, usize, char, u64)> = Vec::new(); // (src, dst, label, latency)
    for e in g.edges() {
        let edge = g.edge(e);
        let Latency::Const(ell) = edge.latency() else {
            return Err(CompileError::NonConstantLatency(e));
        };
        let bound =
            transient_bound(edge.presence(), p).ok_or(CompileError::NonPeriodicPresence(e))?;
        t0 = t0.max(bound);
        let label = edge.label().as_char();
        if alphabet.index_of_char(label).is_none() {
            return Err(CompileError::LabelOutsideAlphabet(label));
        }
        edge_info.push((edge.src().index(), edge.dst().index(), label, *ell));
    }
    // Round T₀ up to a period boundary so tail phases align with absolute
    // times (phase ψ ↔ times ≡ ψ mod p, all ≥ T₀).
    let t0 = t0.div_ceil(p) * p;

    let span = t0 as usize; // explicit states cover [0, T₀)
    let per_node = span + p as usize;
    let n = g.num_nodes();
    let explicit = |node: usize, t: u64| node * per_node + t as usize;
    let tail = |node: usize, phase: u64| node * per_node + span + phase as usize;
    // Map an absolute arrival time to its state.
    let state_of = |node: usize, t: u64| {
        if t < t0 {
            explicit(node, t)
        } else {
            tail(node, t % p)
        }
    };

    let mut nfa = Nfa::new(alphabet.clone(), n * per_node);
    for &v0 in aut.initial() {
        nfa.add_start(state_of(v0.index(), *aut.start_time()))
            .expect("state in range");
    }
    for &f in aut.accepting() {
        for t in 0..t0 {
            nfa.add_accepting(explicit(f.index(), t))
                .expect("state in range");
        }
        for phase in 0..p {
            nfa.add_accepting(tail(f.index(), phase))
                .expect("state in range");
        }
    }

    for (e, &(u, v, label, ell)) in g.edges().zip(&edge_info) {
        let presence = g.edge(e).presence();
        // Tail presence per phase, evaluated at the first aligned instant.
        let tail_present: Vec<bool> = (0..p)
            .map(|phase| presence.is_present(&(t0 + phase)))
            .collect();

        // From explicit states (ready at concrete time t < T₀).
        for t in 0..t0 {
            let departures: Vec<u64> = match policy {
                WaitingPolicy::NoWait => vec![t],
                WaitingPolicy::Bounded(d) => (t..=t.saturating_add(*d)).collect(),
                // Unbounded: all concrete instants below T₀ + p cover
                // every tail phase as well.
                WaitingPolicy::Unbounded => (t..t0 + p).collect(),
            };
            for s in departures {
                let present = if s < t0 {
                    presence.is_present(&s)
                } else {
                    tail_present[(s % p) as usize]
                };
                if present {
                    nfa.add_transition(explicit(u, t), Some(label), state_of(v, s + ell))
                        .expect("states in range, label in alphabet");
                }
            }
        }

        // From tail states (ready at some time ≥ T₀ with a known phase).
        for phase in 0..p {
            let departures: Box<dyn Iterator<Item = u64>> = match policy {
                WaitingPolicy::NoWait => Box::new(std::iter::once(phase)),
                WaitingPolicy::Bounded(d) => {
                    let span = (*d).min(p - 1);
                    Box::new((0..=span).map(move |j| (phase + j) % p))
                }
                WaitingPolicy::Unbounded => Box::new(0..p),
            };
            for dep in departures {
                if tail_present[dep as usize] {
                    nfa.add_transition(tail(u, phase), Some(label), tail(v, (dep + ell) % p))
                        .expect("states in range, label in alphabet");
                }
            }
        }
    }
    Ok(nfa)
}

/// One-call Theorem 2.2: the waiting language of an eventually periodic
/// TVG-automaton as a plain regular expression.
///
/// Compiles (via [`eventually_periodic_to_nfa`]), determinizes,
/// minimizes, and synthesizes a regex by state elimination.
///
/// # Errors
///
/// Returns a [`CompileError`] if the schedules are not eventually
/// periodic with the given period or a latency is non-constant.
///
/// ```
/// use std::collections::BTreeSet;
/// use tvg_expressivity::wait_regular::wait_language_regex;
/// use tvg_expressivity::TvgAutomaton;
/// use tvg_journeys::WaitingPolicy;
/// use tvg_langs::Alphabet;
/// use tvg_model::{Latency, Presence, TvgBuilder};
///
/// let mut b = TvgBuilder::<u64>::new();
/// let v = b.nodes(2);
/// b.edge(v[0], v[1], 'a', Presence::Periodic { period: 2, phases: [0u64].into() },
///     Latency::unit())?;
/// let aut = TvgAutomaton::new(b.build()?, BTreeSet::from([v[0]]),
///     BTreeSet::from([v[1]]), 0)?;
/// let re = wait_language_regex(&aut, 2, &WaitingPolicy::Unbounded, &Alphabet::ab())?;
/// assert_eq!(re.to_string(), "a");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn wait_language_regex(
    aut: &TvgAutomaton<u64>,
    period: u64,
    policy: &WaitingPolicy<u64>,
    alphabet: &Alphabet,
) -> Result<tvg_langs::Regex, CompileError> {
    let nfa = eventually_periodic_to_nfa(aut, period, policy, alphabet)?;
    Ok(tvg_langs::synth::dfa_to_regex(&nfa.to_dfa().minimize()))
}

/// Embeds a DFA as a TVG-automaton with `Always` presence and unit
/// latencies — the *regular ⊆ `L_wait`* direction of Theorem 2.2.
///
/// With schedules that never change, a pause can never enable or disable
/// anything: direct and indirect journeys traverse the same edges, so
/// `L_nowait(G) = L_wait[d](G) = L_wait(G) = L(dfa)`.
#[must_use]
pub fn dfa_to_tvg_automaton(dfa: &Dfa) -> TvgAutomaton<u64> {
    let mut b = TvgBuilder::<u64>::new();
    let nodes = b.nodes(dfa.num_states());
    for s in 0..dfa.num_states() {
        for letter in dfa.alphabet().iter() {
            let t = dfa
                .step(s, letter)
                .expect("alphabet letters step everywhere in a total dfa");
            b.edge(
                nodes[s],
                nodes[t],
                letter.as_char(),
                Presence::Always,
                Latency::unit(),
            )
            .expect("builder-owned nodes");
        }
    }
    let accepting = (0..dfa.num_states())
        .filter(|&s| dfa.is_accepting(s))
        .map(|s| nodes[s])
        .collect();
    TvgAutomaton::new(
        b.build().expect("dfa has at least one state"),
        BTreeSet::from([nodes[dfa.start()]]),
        accepting,
        0,
    )
    .expect("static construction is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tvg_langs::sample::words_upto;
    use tvg_langs::{word, Regex, Word};
    use tvg_model::generators::{random_periodic_tvg, RandomPeriodicParams};
    use tvg_model::NodeId;

    fn policy_set() -> Vec<WaitingPolicy<u64>> {
        vec![
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(1),
            WaitingPolicy::Bounded(2),
            WaitingPolicy::Unbounded,
        ]
    }

    /// The E3 workhorse: on random periodic TVGs, the compiled NFA and the
    /// journey-language simulation agree exactly, for every policy.
    #[test]
    fn compiled_nfa_matches_simulation_on_random_tvgs() {
        let alphabet = Alphabet::ab();
        for seed in 0..12u64 {
            let params = RandomPeriodicParams {
                num_nodes: 4,
                num_edges: 7,
                period: 3,
                phase_density: 0.5,
                alphabet: alphabet.clone(),
            };
            let g = random_periodic_tvg(&mut StdRng::seed_from_u64(seed), &params);
            let initial = BTreeSet::from([NodeId::from_index(0)]);
            let accepting = BTreeSet::from([NodeId::from_index(params.num_nodes - 1)]);
            let aut = TvgAutomaton::new(g, initial, accepting, 0).expect("valid");
            for policy in policy_set() {
                let nfa = periodic_to_nfa(&aut, 3, &policy, &alphabet).expect("periodic");
                let limits = sufficient_limits(&aut, 3, 6);
                let simulated = aut.language_upto(&policy, &limits, 6);
                let compiled: BTreeSet<Word> = nfa.to_dfa().language_upto(6).into_iter().collect();
                assert_eq!(simulated, compiled, "seed={seed} policy={policy}");
            }
        }
    }

    #[test]
    fn wait_language_of_periodic_tvg_is_regular_with_small_dfa() {
        let alphabet = Alphabet::ab();
        let params = RandomPeriodicParams {
            num_nodes: 5,
            num_edges: 9,
            period: 4,
            phase_density: 0.4,
            alphabet: alphabet.clone(),
        };
        let g = random_periodic_tvg(&mut StdRng::seed_from_u64(99), &params);
        let aut = TvgAutomaton::new(
            g,
            BTreeSet::from([NodeId::from_index(0)]),
            BTreeSet::from([NodeId::from_index(4)]),
            0,
        )
        .expect("valid");
        let nfa = periodic_to_nfa(&aut, 4, &WaitingPolicy::Unbounded, &alphabet).expect("periodic");
        let min = nfa.to_dfa().minimize();
        // Regularity witnessed constructively: a concrete minimal DFA.
        assert!(min.num_states() <= 5 * 4 + 1);
        // And its language is the simulated one.
        let limits = sufficient_limits(&aut, 4, 7);
        let simulated = aut.language_upto(&WaitingPolicy::Unbounded, &limits, 7);
        let compiled: BTreeSet<Word> = min.language_upto(7).into_iter().collect();
        assert_eq!(simulated, compiled);
    }

    #[test]
    fn phase_set_extraction() {
        assert_eq!(
            phase_set(&Presence::Always, 3),
            Some(BTreeSet::from([0, 1, 2]))
        );
        assert_eq!(phase_set(&Presence::Never, 3), Some(BTreeSet::new()));
        // Sub-period expands: period 2 phases {1} in period 4 = {1, 3}.
        assert_eq!(
            phase_set(
                &Presence::Periodic {
                    period: 2,
                    phases: BTreeSet::from([1])
                },
                4
            ),
            Some(BTreeSet::from([1, 3]))
        );
        // Mismatched periods fail.
        assert_eq!(
            phase_set(
                &Presence::Periodic {
                    period: 3,
                    phases: BTreeSet::from([0])
                },
                4
            ),
            None
        );
        // Combinators.
        let p = Presence::Or(
            Box::new(Presence::Periodic {
                period: 2,
                phases: BTreeSet::from([0]),
            }),
            Box::new(Presence::Periodic {
                period: 4,
                phases: BTreeSet::from([1]),
            }),
        );
        assert_eq!(phase_set(&p, 4), Some(BTreeSet::from([0, 1, 2])));
        assert_eq!(
            phase_set(&Presence::Not(Box::new(p)), 4),
            Some(BTreeSet::from([3]))
        );
        // Aperiodic forms refuse.
        assert_eq!(phase_set(&Presence::At(3), 4), None);
        assert_eq!(phase_set(&Presence::PqPower { p: 2, q: 3 }, 4), None);
    }

    #[test]
    fn compile_errors_name_the_edge() {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(v[0], v[1], 'a', Presence::At(3), Latency::unit())
            .expect("valid");
        let aut = TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[1]]),
            0,
        )
        .expect("valid");
        assert_eq!(
            periodic_to_nfa(&aut, 4, &WaitingPolicy::Unbounded, &Alphabet::ab()),
            Err(CompileError::NonPeriodicPresence(
                tvg_model::EdgeId::from_index(0)
            ))
        );

        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Always,
            Latency::Affine { mul: 1, add: 0 },
        )
        .expect("valid");
        let aut = TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[1]]),
            0,
        )
        .expect("valid");
        assert_eq!(
            periodic_to_nfa(&aut, 4, &WaitingPolicy::Unbounded, &Alphabet::ab()),
            Err(CompileError::NonConstantLatency(
                tvg_model::EdgeId::from_index(0)
            ))
        );
        assert_eq!(
            periodic_to_nfa(&aut, 0, &WaitingPolicy::Unbounded, &Alphabet::ab()),
            Err(CompileError::ZeroPeriod)
        );
    }

    #[test]
    fn regular_into_wait_language_roundtrip() {
        // Regular ⊆ L_wait: embed a DFA, check every policy yields the
        // same language back.
        let alphabet = Alphabet::ab();
        for pattern in ["(a|b)*ab", "a*b*", "(ab)*", "a(a|b)+"] {
            let dfa = Regex::parse(pattern, &alphabet)
                .expect("parses")
                .to_nfa(&alphabet)
                .to_dfa()
                .minimize();
            let aut = dfa_to_tvg_automaton(&dfa);
            let limits = SearchLimits::new(20, 7);
            for policy in policy_set() {
                for w in words_upto(&alphabet, 5) {
                    assert_eq!(
                        aut.accepts(&w, &policy, &limits),
                        dfa.accepts(&w),
                        "{pattern} {policy} {w}"
                    );
                }
            }
            // Also via the compiler: the embedded TVG is trivially
            // periodic with period 1.
            let nfa = periodic_to_nfa(&aut, 1, &WaitingPolicy::Unbounded, &alphabet)
                .expect("always-present schedules are periodic");
            assert!(nfa.to_dfa().equivalent_to(&dfa), "{pattern}");
        }
    }

    /// Graph with transient (At/Window/After) and periodic edges mixed —
    /// rejected by `periodic_to_nfa`, compiled by the eventually-periodic
    /// extension.
    fn transient_mix_automaton() -> TvgAutomaton<u64> {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(4);
        b.edge(v[0], v[1], 'a', Presence::At(2), Latency::unit())
            .expect("valid");
        b.edge(
            v[1],
            v[2],
            'b',
            Presence::Window { from: 4, until: 6 },
            Latency::Const(2),
        )
        .expect("valid");
        b.edge(
            v[2],
            v[3],
            'a',
            Presence::Periodic {
                period: 3,
                phases: BTreeSet::from([1]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(v[3], v[0], 'b', Presence::After(5), Latency::unit())
            .expect("valid");
        TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[3]]),
            0,
        )
        .expect("valid")
    }

    #[test]
    fn eventually_periodic_compiler_matches_simulation() {
        let alphabet = Alphabet::ab();
        let aut = transient_mix_automaton();
        // periodic_to_nfa refuses (transient leaves present).
        assert!(matches!(
            periodic_to_nfa(&aut, 3, &WaitingPolicy::Unbounded, &alphabet),
            Err(CompileError::NonPeriodicPresence(_))
        ));
        // The extension compiles it; compare against simulation for every
        // policy on all words up to length 6.
        for policy in policy_set() {
            let nfa = eventually_periodic_to_nfa(&aut, 3, &policy, &alphabet)
                .expect("eventually periodic");
            let limits = SearchLimits::new(60, 7);
            let simulated = aut.language_upto(&policy, &limits, 6);
            let compiled: BTreeSet<Word> = nfa.to_dfa().language_upto(6).into_iter().collect();
            assert_eq!(simulated, compiled, "{policy}");
        }
    }

    #[test]
    fn eventually_periodic_agrees_with_periodic_on_periodic_inputs() {
        // On purely periodic graphs the two compilers must agree exactly.
        let alphabet = Alphabet::ab();
        for seed in 0..6u64 {
            let params = RandomPeriodicParams {
                num_nodes: 4,
                num_edges: 7,
                period: 3,
                phase_density: 0.5,
                alphabet: alphabet.clone(),
            };
            let g = random_periodic_tvg(&mut StdRng::seed_from_u64(seed), &params);
            let aut = TvgAutomaton::new(
                g,
                BTreeSet::from([NodeId::from_index(0)]),
                BTreeSet::from([NodeId::from_index(3)]),
                0,
            )
            .expect("valid");
            for policy in policy_set() {
                let a = periodic_to_nfa(&aut, 3, &policy, &alphabet)
                    .expect("periodic")
                    .to_dfa()
                    .minimize();
                let b = eventually_periodic_to_nfa(&aut, 3, &policy, &alphabet)
                    .expect("eventually periodic")
                    .to_dfa()
                    .minimize();
                assert!(a.equivalent_to(&b), "seed={seed} policy={policy}");
            }
        }
    }

    #[test]
    fn eventually_periodic_rejects_aperiodic_schedules() {
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::PqPower { p: 2, q: 3 },
            Latency::unit(),
        )
        .expect("valid");
        let aut = TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[1]]),
            0,
        )
        .expect("valid");
        assert_eq!(
            eventually_periodic_to_nfa(&aut, 6, &WaitingPolicy::Unbounded, &Alphabet::ab()),
            Err(CompileError::NonPeriodicPresence(
                tvg_model::EdgeId::from_index(0)
            ))
        );
    }

    #[test]
    fn eventually_periodic_handles_dilated_schedules() {
        // dilate(periodic, f) is (f·p)-periodic: compile with the larger
        // period and compare against simulation.
        let alphabet = Alphabet::ab();
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(2);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 2,
                phases: BTreeSet::from([0]),
            }
            .dilate(3),
            Latency::Const(3),
        )
        .expect("valid");
        b.edge(v[1], v[0], 'b', Presence::Always, Latency::Const(1))
            .expect("valid");
        let aut = TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[1]]),
            0,
        )
        .expect("valid");
        for policy in policy_set() {
            let nfa = eventually_periodic_to_nfa(&aut, 6, &policy, &alphabet)
                .expect("dilated periodic is 6-periodic");
            let limits = SearchLimits::new(60, 7);
            let simulated = aut.language_upto(&policy, &limits, 5);
            let compiled: BTreeSet<Word> = nfa.to_dfa().language_upto(5).into_iter().collect();
            assert_eq!(simulated, compiled, "{policy}");
        }
    }

    #[test]
    fn wait_language_regex_roundtrips() {
        // The synthesized regex's language equals the compiled DFA's.
        let alphabet = Alphabet::ab();
        for seed in [0u64, 5, 7] {
            let params = RandomPeriodicParams {
                num_nodes: 4,
                num_edges: 7,
                period: 3,
                phase_density: 0.5,
                alphabet: alphabet.clone(),
            };
            let g = random_periodic_tvg(&mut StdRng::seed_from_u64(seed), &params);
            let aut = TvgAutomaton::new(
                g,
                BTreeSet::from([NodeId::from_index(0)]),
                BTreeSet::from([NodeId::from_index(3)]),
                0,
            )
            .expect("valid");
            let re = wait_language_regex(&aut, 3, &WaitingPolicy::Unbounded, &alphabet)
                .expect("periodic");
            let from_regex = re.to_nfa(&alphabet).to_dfa();
            let compiled = periodic_to_nfa(&aut, 3, &WaitingPolicy::Unbounded, &alphabet)
                .expect("periodic")
                .to_dfa();
            assert!(from_regex.equivalent_to(&compiled), "seed {seed}: {re}");
        }
    }

    #[test]
    fn bounded_policies_interpolate() {
        // On a staggered periodic graph, L_nowait ⊆ L_wait[1] ⊆ L_wait[2]
        // ⊆ L_wait, with at least one strict inclusion.
        let alphabet = Alphabet::ab();
        let mut b = TvgBuilder::<u64>::new();
        let v = b.nodes(3);
        b.edge(
            v[0],
            v[1],
            'a',
            Presence::Periodic {
                period: 4,
                phases: BTreeSet::from([0]),
            },
            Latency::unit(),
        )
        .expect("valid");
        b.edge(
            v[1],
            v[2],
            'b',
            Presence::Periodic {
                period: 4,
                phases: BTreeSet::from([3]),
            },
            Latency::unit(),
        )
        .expect("valid");
        let aut = TvgAutomaton::new(
            b.build().expect("valid"),
            BTreeSet::from([v[0]]),
            BTreeSet::from([v[2]]),
            0,
        )
        .expect("valid");
        let langs: Vec<BTreeSet<Word>> = policy_set()
            .iter()
            .map(|policy| {
                periodic_to_nfa(&aut, 4, policy, &alphabet)
                    .expect("periodic")
                    .to_dfa()
                    .language_upto(4)
                    .into_iter()
                    .collect()
            })
            .collect();
        for i in 1..langs.len() {
            assert!(
                langs[i - 1].is_subset(&langs[i]),
                "monotone in the waiting bound"
            );
        }
        // "ab" needs a 2-unit pause (arrive at 1, depart at 3).
        assert!(!langs[0].contains(&word("ab")));
        assert!(!langs[1].contains(&word("ab")));
        assert!(langs[2].contains(&word("ab")));
        assert!(langs[3].contains(&word("ab")));
    }
}
