//! Expressivity of time-varying graphs and the power of waiting —
//! the primary contribution of *“Brief Announcement: Waiting in Dynamic
//! Networks”* (Casteigts, Flocchini, Godard, Santoro, Yamashita,
//! PODC 2012), as an executable library.
//!
//! A labeled TVG `G` is an automaton [`TvgAutomaton`] whose language
//! `L_f(G)` is the set of words spelled by feasible journeys; `f` is the
//! waiting policy. The paper's results, each with its construction here:
//!
//! | Result | Statement | Module |
//! |--------|-----------|--------|
//! | Figure 1 / Table 1 | a TVG with `L_nowait(G) = {aⁿbⁿ}` | [`anbn`] |
//! | Theorem 2.1 | `L_nowait` ⊇ all computable languages | [`nowait_power`] |
//! | Theorem 2.2 | `L_wait` = the regular languages | [`wait_regular`] |
//! | Theorem 2.3 | `L_wait[d]` = `L_nowait` for every fixed `d` | [`dilation`] |
//!
//! The qualitative headline — *forbidding waiting makes the environment
//! as strong as a Turing machine; allowing unbounded waiting collapses it
//! to a finite-state machine* — becomes a sequence of machine-checked
//! equalities between sampled journey languages, compiled automata, and
//! reference deciders.
//!
//! # Examples
//!
//! The Figure-1 automaton accepting the non-regular `aⁿbⁿ` with direct
//! journeys only — time itself is the counter:
//!
//! ```
//! use tvg_expressivity::anbn::AnbnAutomaton;
//! use tvg_langs::word;
//!
//! let fig1 = AnbnAutomaton::new(2, 3)?;
//! assert!(fig1.accepts_nowait(&word("aaabbb")));
//! assert!(!fig1.accepts_nowait(&word("aaabb")));
//!
//! // The accepting run's clock: 1 →a 2 →a 4 →a 8 →b 24 →b 72 →b 73.
//! let trace = fig1.nowait_trace(&word("aaabbb")).expect("accepted");
//! assert_eq!(trace[3].1.to_string(), "8"); // after a³: t = 2³
//! # Ok::<(), tvg_expressivity::anbn::AnbnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anbn;
mod automaton;
pub mod dilation;
pub mod nowait_power;
pub mod wait_regular;

pub use automaton::{AutomatonError, TvgAutomaton};
