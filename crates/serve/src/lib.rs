//! Always-on query service over a live time-varying graph.
//!
//! The *Waiting in Dynamic Networks* reproduction answered journey
//! queries either offline (compile, then query) or tick-alternating
//! (ingest a batch, then query, repeat). This crate closes the gap to a
//! service: queries are answered **while** the schedule keeps changing.
//!
//! Three pieces, one per module:
//!
//! * [`snapshot`] — epoch/RCU-style publication. A single writer clones
//!   the live index between ingest ticks ([`tvg_model::TvgStream::snapshot`])
//!   and publishes each copy as an immutable `Arc<`[`ServeSnapshot`]`>`
//!   through an [`EpochRing`]; readers acquire views with one atomic
//!   load and an `Arc` clone — no locks anywhere on the read path, in
//!   safe Rust only.
//! * [`load`] — a deterministic synthetic client population: seeded
//!   request mix (foremost / matrix-row / beaconing broadcast) under a
//!   discrete Poisson-style arrival process (geometric inter-arrival
//!   gaps), byte-stable across platforms.
//! * [`runner`] — the serve loop itself: requests are pinned to epochs
//!   by timestamp arithmetic, grouped so queries sharing a source and
//!   epoch share one engine pass, and drained by N reader threads
//!   concurrently with the writer's ingestion. The logical outcome is
//!   reader-count invariant; only the timing metrics are real
//!   wall-clock measurements.
//!
//! The scenario layer (`tvg-scenarios`) exposes all of this as the
//! `serve` plan of the `.tvgs` spec language, with the logical section
//! of its report golden-gated in CI at reader counts 1 and 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod runner;
pub mod snapshot;

pub use load::{generate_load, LoadSpec, Request, TimedRequest};
pub use runner::{
    availability, epoch_of, serve, Answer, PublishStats, ServeConfig, ServeOutcome, ServeTiming,
    ServedRequest,
};
pub use snapshot::{EpochRing, ServeSnapshot};
