//! The serve loop: one writer ingesting ticks, N readers draining the
//! admission queue against pinned snapshots.
//!
//! ## Determinism under real concurrency
//!
//! The runtime is genuinely concurrent — readers answer queries while
//! the writer is mid-ingest — yet the *logical* outcome is a pure
//! function of the inputs. The trick is deterministic epoch pinning:
//! each request's logical arrival instant decides, by timestamp
//! arithmetic alone (see [`availability`] / [`epoch_of`]), which
//! publication epoch serves it. A reader that dequeues a request pinned
//! to an epoch the writer has not reached yet waits on the
//! [`EpochRing`]; one that dequeues a request pinned to an old epoch
//! reads the frozen snapshot no matter how far the writer has advanced.
//! Either way the answer bytes are those of the pinned snapshot, so
//! reader count and scheduling change only the timing metrics, never
//! the logical section — the property the golden gate and the
//! `servecheck` oracle both pin.
//!
//! ## Amortization
//!
//! Requests are grouped by `(epoch, kind-class, source)`: a foremost
//! request and a matrix request on the same source and epoch share one
//! engine pass (both read off the same foremost tree), and a beaconing
//! broadcast's multi-seed pass is run once per `(epoch, source)` no
//! matter how many clients asked. [`ServeOutcome::grouped_runs`] counts
//! the actual engine passes so reports can show the amortization.

use crate::load::{Request, TimedRequest};
use crate::snapshot::{EpochRing, ServeSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use tvg_journeys::{foremost_tree_multi, EngineStats, SearchLimits, WaitingPolicy};
use tvg_model::stream::{StreamError, StreamEvent, TvgStream};
use tvg_model::NodeId;

/// How a serve run executes: reader parallelism and query discipline.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Reader threads draining the admission queue (clamped up to 1).
    pub readers: usize,
    /// Waiting policy of every query.
    pub policy: WaitingPolicy<u64>,
    /// Search limits of every query (journeys depart in
    /// `[start, limits.horizon]`).
    pub limits: SearchLimits<u64>,
    /// Journey start instant shared by every query (requests pin
    /// *epochs* by arrival time; the journey clock is the spec's).
    pub start: u64,
}

/// A request's computed answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// Foremost arrival at the destination (`None` = unreachable).
    Arrival(Option<u64>),
    /// Nodes reached from the source (matrix row weight).
    Reached(u64),
    /// Nodes informed by the beaconing broadcast.
    Informed(u64),
}

/// One fully served request: the input stamped with the epoch that
/// answered it and the answer itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedRequest {
    /// Logical arrival instant (from the load generator).
    pub at: u64,
    /// The query.
    pub request: Request,
    /// The publication epoch whose snapshot answered it.
    pub epoch: u64,
    /// The answer.
    pub answer: Answer,
}

/// Wall-clock metrics of a serve run. Real measurements — they vary by
/// machine and scheduling, so they must stay **outside** any canonical
/// report bytes (the scenario layer carries them in a non-canonical
/// `timing` field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeTiming {
    /// End-to-end wall time of the run in microseconds.
    pub wall_micros: u128,
    /// Median per-request service latency (dequeue-to-answer, the
    /// epoch wait included) in microseconds.
    pub p50_micros: u128,
    /// 95th-percentile per-request service latency in microseconds.
    pub p95_micros: u128,
    /// Worst per-request service latency in microseconds.
    pub max_micros: u128,
    /// Requests answered per wall-clock second.
    pub throughput_rps: f64,
    /// Writer wall time spent taking and publishing snapshots, summed
    /// over every epoch, in microseconds.
    pub publish_micros: u128,
    /// Epochs published per second of publication time (the headline
    /// rate the persistent index keeps flat as the schedule grows).
    pub epochs_per_sec: f64,
}

/// What publishing one epoch shared and copied. Unlike [`ServeTiming`],
/// these are *logical* counters — a pure function of the stream and the
/// tick schedule (single writer, and readers only clone the snapshot
/// `Arc`, never its chunks), so they are deterministic at any reader
/// count and safe to pin in tests and goldens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishStats {
    /// The epoch this publication produced.
    pub epoch: u64,
    /// Events in the tick ingested just before this publish (0 for the
    /// initial epoch and for stale error-path publications).
    pub events: u64,
    /// Frozen chunks (plus the shared graph) the snapshot shares with
    /// the live index instead of copying.
    pub chunks_frozen: u64,
    /// Shared chunks the stream had to copy-on-write during the tick —
    /// the true cost snapshot isolation imposed on this tick's
    /// mutations.
    pub chunks_copied: u64,
}

/// The complete outcome of one serve run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Every request in input order, answered.
    pub served: Vec<ServedRequest>,
    /// Epochs the writer published (`ticks + 1`: the initial snapshot
    /// plus one per ingest tick).
    pub epochs_published: u64,
    /// Engine passes actually run after grouping.
    pub grouped_runs: u64,
    /// Summed engine work counters (order-independent, so identical at
    /// every reader count).
    pub stats: EngineStats,
    /// Per-epoch publication counters, in publication order
    /// (deterministic; see [`PublishStats`]).
    pub publications: Vec<PublishStats>,
    /// Wall-clock metrics (non-canonical; see [`ServeTiming`]).
    pub timing: ServeTiming,
}

/// When each tick's content becomes *logically* available: entry `i` is
/// the running maximum event instant over ticks `0..=i` (a tick with no
/// timed events inherits its predecessor's availability). A request
/// arriving at instant `t` is served by the latest epoch whose content
/// is from `<= t` — this is the timestamp arithmetic that makes epoch
/// pinning deterministic.
#[must_use]
pub fn availability(ticks: &[Vec<StreamEvent<u64>>]) -> Vec<u64> {
    let mut avail = Vec::with_capacity(ticks.len());
    let mut running = 0u64;
    for tick in ticks {
        for event in tick {
            let instant = match event {
                StreamEvent::Up { at, .. }
                | StreamEvent::Down { at, .. }
                | StreamEvent::NodeLeave { at, .. } => *at,
                StreamEvent::ExtendHorizon { to } => *to,
                StreamEvent::NewEdge { .. } | StreamEvent::NewNode { .. } => 0,
            };
            running = running.max(instant);
        }
        avail.push(running);
    }
    avail
}

/// The epoch serving a request that arrives at `t`: the number of ticks
/// whose [`availability`] is at or before `t` (epoch 0 is the
/// pre-ingest snapshot; epoch `i + 1` becomes eligible once tick `i`'s
/// content is from `<= t`).
#[must_use]
pub fn epoch_of(avail: &[u64], t: u64) -> u64 {
    // `avail` is a running maximum, so the eligible prefix is
    // contiguous: one binary search instead of a scan per request.
    avail.partition_point(|&a| a <= t) as u64
}

/// Which engine pass a request group shares: plain single-seed trees
/// (foremost + matrix) or beaconing multi-seed broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum GroupClass {
    Tree,
    Beacon,
}

/// What one reader brings back for one group.
struct GroupResult {
    answers: Vec<(usize, u64, Answer)>,
    stats: EngineStats,
    micros: u128,
    members: usize,
}

/// Runs the serve loop: the writer applies `ticks` to `stream` and
/// publishes one snapshot epoch per tick (plus the initial epoch 0),
/// while `config.readers` reader threads drain `requests` — grouped by
/// `(epoch, class, source)` — against their pinned snapshots.
///
/// Readers never lock: snapshot acquisition is one atomic load plus an
/// `Arc` clone off the [`EpochRing`].
///
/// # Errors
///
/// An ingest failure stops the writer and surfaces as the returned
/// [`StreamError`] — but only after the remaining epochs are published
/// as stale copies of the last good snapshot (so no pinned reader can
/// hang) and every thread is joined.
///
/// # Panics
///
/// Propagates the first worker panic after all threads are joined
/// (mirroring the batch layer's fan-out discipline).
pub fn serve(
    stream: TvgStream<u64>,
    ticks: &[Vec<StreamEvent<u64>>],
    requests: &[TimedRequest],
    config: &ServeConfig,
) -> Result<ServeOutcome, StreamError<u64>> {
    let started = Instant::now();
    let avail = availability(ticks);
    let epochs = ticks.len() + 1;

    // Admission grouping: request indices by (epoch, class, source),
    // deterministic by construction (BTreeMap order).
    let mut groups: std::collections::BTreeMap<(u64, GroupClass, usize), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, timed) in requests.iter().enumerate() {
        let epoch = epoch_of(&avail, timed.at);
        let class = match timed.request {
            Request::Foremost { .. } | Request::Matrix { .. } => GroupClass::Tree,
            Request::Broadcast { .. } => GroupClass::Beacon,
        };
        groups
            .entry((epoch, class, timed.request.src()))
            .or_default()
            .push(i);
    }
    let groups: Vec<((u64, GroupClass, usize), Vec<usize>)> = groups.into_iter().collect();
    let grouped_runs = groups.len() as u64;

    let ring: EpochRing<u64> = EpochRing::new(epochs);
    let next_group = AtomicUsize::new(0);
    let readers = config.readers.max(1);

    let mut ingest_result: Result<(), StreamError<u64>> = Ok(());
    let mut publications: Vec<PublishStats> = Vec::new();
    let mut publish_micros: u128 = 0;
    let mut group_results: Vec<Option<GroupResult>> = Vec::with_capacity(groups.len());
    group_results.resize_with(groups.len(), || None);
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let ring = &ring;
        let writer = scope.spawn(move || {
            let mut stream = stream;
            let mut log = PublishLog::new(&stream, ticks.len() + 1);
            log.publish(ring, &stream, 0, 0);
            for (i, tick) in ticks.iter().enumerate() {
                if let Err(e) = stream.ingest(tick) {
                    // Publish the remaining epochs as stale copies so
                    // readers pinned past the failure never spin
                    // forever; the error itself is the writer's result.
                    for j in i..ticks.len() {
                        log.publish(ring, &stream, j as u64 + 1, 0);
                    }
                    return (Err(e), log);
                }
                log.publish(ring, &stream, i as u64 + 1, tick.len() as u64);
            }
            (Ok(()), log)
        });

        let reader_handles: Vec<_> = (0..readers)
            .map(|_| {
                let (next_group, groups, config) = (&next_group, &groups, config);
                scope.spawn(move || {
                    let mut done: Vec<(usize, GroupResult)> = Vec::new();
                    loop {
                        let gi = next_group.fetch_add(1, Ordering::Relaxed);
                        let Some(((epoch, class, src), members)) = groups.get(gi) else {
                            return done;
                        };
                        let t0 = Instant::now();
                        let snapshot = ring.wait(*epoch);
                        let result =
                            serve_group(&snapshot, *class, *src, members, requests, config);
                        done.push((
                            gi,
                            GroupResult {
                                answers: result.0,
                                stats: result.1,
                                micros: t0.elapsed().as_micros(),
                                members: members.len(),
                            },
                        ));
                    }
                })
            })
            .collect();

        // Join every thread before reacting to any failure (one panic
        // or ingest error must not strand siblings mid-scope).
        for handle in reader_handles {
            match handle.join() {
                Ok(done) => {
                    for (gi, result) in done {
                        group_results[gi] = Some(result);
                    }
                }
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        match writer.join() {
            Ok((result, log)) => {
                ingest_result = result;
                publications = log.publications;
                publish_micros = log.micros;
            }
            Err(payload) => {
                panic_payload.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    ingest_result?;

    // Merge: every group ran exactly once, every request belongs to
    // exactly one group, so the slots below fill completely.
    let mut served: Vec<Option<ServedRequest>> = vec![None; requests.len()];
    let mut stats = EngineStats::default();
    let mut latencies: Vec<u128> = Vec::with_capacity(requests.len());
    for result in group_results.into_iter().flatten() {
        stats += result.stats;
        for _ in 0..result.members {
            latencies.push(result.micros);
        }
        for (i, epoch, answer) in result.answers {
            served[i] = Some(ServedRequest {
                at: requests[i].at,
                request: requests[i].request,
                epoch,
                answer,
            });
        }
    }
    let served: Vec<ServedRequest> = served
        .into_iter()
        .map(|r| r.expect("every request was served by its group"))
        .collect();

    let wall_micros = started.elapsed().as_micros();
    latencies.sort_unstable();
    let percentile = |p: usize| -> u128 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[(latencies.len() - 1) * p / 100]
    };
    #[allow(clippy::cast_precision_loss)]
    let throughput_rps = if wall_micros == 0 {
        0.0
    } else {
        requests.len() as f64 / (wall_micros as f64 / 1_000_000.0)
    };
    #[allow(clippy::cast_precision_loss)]
    let epochs_per_sec = if publish_micros == 0 {
        0.0
    } else {
        epochs as f64 / (publish_micros as f64 / 1_000_000.0)
    };
    Ok(ServeOutcome {
        served,
        epochs_published: epochs as u64,
        grouped_runs,
        stats,
        publications,
        timing: ServeTiming {
            wall_micros,
            p50_micros: percentile(50),
            p95_micros: percentile(95),
            max_micros: latencies.last().copied().unwrap_or(0),
            throughput_rps,
            publish_micros,
            epochs_per_sec,
        },
    })
}

/// Writer-side bookkeeping around each snapshot publication: wall time
/// of the publish itself plus the deterministic sharing counters.
struct PublishLog {
    publications: Vec<PublishStats>,
    micros: u128,
    last_copied: u64,
}

impl PublishLog {
    fn new(stream: &TvgStream<u64>, epochs: usize) -> Self {
        PublishLog {
            publications: Vec::with_capacity(epochs),
            micros: 0,
            last_copied: stream.index().chunks_copied(),
        }
    }

    fn publish(&mut self, ring: &EpochRing<u64>, stream: &TvgStream<u64>, epoch: u64, events: u64) {
        let t0 = Instant::now();
        ring.publish(ServeSnapshot::new(epoch, stream.snapshot()));
        self.micros += t0.elapsed().as_micros();
        let copied = stream.index().chunks_copied();
        self.publications.push(PublishStats {
            epoch,
            events,
            chunks_frozen: stream.index().chunks_frozen(),
            chunks_copied: copied - self.last_copied,
        });
        self.last_copied = copied;
    }
}

/// Answers one group with a single engine pass over its pinned
/// snapshot.
fn serve_group(
    snapshot: &std::sync::Arc<ServeSnapshot<u64>>,
    class: GroupClass,
    src: usize,
    members: &[usize],
    requests: &[TimedRequest],
    config: &ServeConfig,
) -> (Vec<(usize, u64, Answer)>, EngineStats) {
    let source = NodeId::from_index(src);
    let seeds: Vec<(NodeId, u64)> = match class {
        GroupClass::Tree => vec![(source, config.start)],
        // A beaconing source re-emits at every instant in the window.
        GroupClass::Beacon => (config.start..=config.limits.horizon)
            .map(|t| (source, t))
            .collect(),
    };
    let tree = foremost_tree_multi(snapshot, &seeds, &config.policy, &config.limits);
    let answers = members
        .iter()
        .map(|&i| {
            let answer = match requests[i].request {
                Request::Foremost { dst, .. } => {
                    Answer::Arrival(tree.arrival(NodeId::from_index(dst)).copied())
                }
                Request::Matrix { .. } => Answer::Reached(tree.num_reached() as u64),
                Request::Broadcast { .. } => Answer::Informed(tree.num_reached() as u64),
            };
            (i, snapshot.epoch(), answer)
        })
        .collect();
    (answers, tree.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{generate_load, LoadSpec};
    use tvg_model::generators::scale_free_temporal;

    fn workload() -> (TvgStream<u64>, Vec<Vec<StreamEvent<u64>>>) {
        let g = scale_free_temporal(12, 24, 5);
        let (stream, events) = TvgStream::replay_of(&g, &24).expect("representable");
        let ticks: Vec<Vec<StreamEvent<u64>>> = events.chunks(8).map(<[_]>::to_vec).collect();
        (stream, ticks)
    }

    fn config(readers: usize) -> ServeConfig {
        ServeConfig {
            readers,
            policy: WaitingPolicy::Unbounded,
            limits: SearchLimits::new(24, 25),
            start: 0,
        }
    }

    fn load() -> Vec<TimedRequest> {
        generate_load(&LoadSpec {
            requests: 40,
            mean_gap: 2,
            mix: (3, 2, 1),
            nodes: 12,
            seed_instant: 0,
            seed: 11,
        })
    }

    #[test]
    fn epoch_pinning_is_timestamp_arithmetic() {
        let ticks = vec![
            vec![StreamEvent::ExtendHorizon { to: 30 }],
            vec![],
            vec![StreamEvent::ExtendHorizon { to: 40 }],
        ];
        let avail = availability(&ticks);
        assert_eq!(avail, vec![30, 30, 40]);
        assert_eq!(epoch_of(&avail, 0), 0);
        assert_eq!(epoch_of(&avail, 29), 0);
        // Both tick 0 and the (empty) tick 1 become available at 30.
        assert_eq!(epoch_of(&avail, 30), 2);
        assert_eq!(epoch_of(&avail, 40), 3);
        assert_eq!(epoch_of(&avail, u64::MAX), 3);
    }

    #[test]
    fn epoch_of_matches_linear_scan_on_a_long_feed() {
        // Regression for the per-request linear scan: the binary search
        // must agree with the counting definition at every probe of a
        // long tick feed, including plateaus (ticks with no timed
        // events) and both edges of every availability step.
        let ticks: Vec<Vec<StreamEvent<u64>>> = (0..10_000u64)
            .map(|i| {
                if i % 7 == 0 {
                    vec![] // plateau: inherits the previous availability
                } else {
                    vec![StreamEvent::ExtendHorizon { to: i * 3 }]
                }
            })
            .collect();
        let avail = availability(&ticks);
        assert_eq!(avail.len(), 10_000);
        for probe in (0..30_000u64).step_by(997).chain([0, 1, 29_997, u64::MAX]) {
            let linear = avail.iter().filter(|&&a| a <= probe).count() as u64;
            assert_eq!(epoch_of(&avail, probe), linear, "probe {probe}");
        }
    }

    #[test]
    fn logical_outcome_is_reader_count_invariant() {
        let requests = load();
        let mut outcomes = Vec::new();
        for readers in [1usize, 2, 4] {
            let (stream, ticks) = workload();
            let outcome = serve(stream, &ticks, &requests, &config(readers)).expect("valid feed");
            assert_eq!(outcome.served.len(), requests.len());
            assert!(outcome.epochs_published >= 2, "needs mid-run epochs");
            assert!(outcome.grouped_runs <= requests.len() as u64);
            assert_eq!(
                outcome.publications.len() as u64,
                outcome.epochs_published,
                "one counter record per published epoch"
            );
            outcomes.push((
                outcome.served,
                outcome.grouped_runs,
                outcome.stats,
                outcome.publications,
            ));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
    }

    #[test]
    fn grouping_amortizes_shared_sources() {
        // Every request on the same source and instant: foremost and
        // matrix collapse into ONE tree pass per epoch.
        let requests: Vec<TimedRequest> = (0..10)
            .map(|i| TimedRequest {
                at: 0,
                request: if i % 2 == 0 {
                    Request::Foremost { src: 3, dst: i }
                } else {
                    Request::Matrix { src: 3 }
                },
            })
            .collect();
        let (stream, ticks) = workload();
        let outcome = serve(stream, &ticks, &requests, &config(4)).expect("valid feed");
        assert_eq!(outcome.grouped_runs, 1, "one shared engine pass");
        assert_eq!(outcome.stats.runs, 1);
        // Matrix answers all agree (same tree).
        let reached: Vec<_> = outcome
            .served
            .iter()
            .filter_map(|s| match s.answer {
                Answer::Reached(n) => Some(n),
                _ => None,
            })
            .collect();
        assert!(reached.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn ingest_error_surfaces_without_hanging_readers() {
        let (stream, mut ticks) = workload();
        // Poison the second tick with an event past the horizon.
        let edge = tvg_model::EdgeId::from_index(0);
        ticks[1] = vec![StreamEvent::Up { edge, at: 1_000 }];
        // Requests pinned far in the future would wait on late epochs;
        // the stale-publication error path must still satisfy them.
        let requests = vec![TimedRequest {
            at: u64::MAX,
            request: Request::Matrix { src: 0 },
        }];
        let err = serve(stream, &ticks, &requests, &config(2)).unwrap_err();
        assert!(matches!(
            err,
            StreamError::BeyondHorizon { at: 1_000, .. } | StreamError::AlreadyUp { .. }
        ));
    }
}
