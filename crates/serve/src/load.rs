//! Deterministic synthetic client load.
//!
//! A serve run needs clients; this module generates them from a seed so
//! the same spec always produces the same admission queue. Requests
//! arrive on the schedule's logical clock under a discrete Poisson-like
//! process: inter-arrival gaps are geometric (each instant flips one
//! Bernoulli coin with success probability `1 / mean_gap`), the
//! memoryless discrete analog of exponential gaps in the Poisson-clock
//! arrival models of the asynchronous rumor-spreading literature. The
//! request *kind* is drawn from an integer-weighted mix; sources and
//! destinations are uniform over the node range.
//!
//! Everything is integer or Bernoulli arithmetic on the workspace's
//! stream-stable [`rand::rngs::StdRng`] — no `f64::ln`, no libm — so
//! the generated load is byte-identical across platforms, which is what
//! lets serve reports be golden-gated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One client query kind, over node indices (resolved to [`tvg_model::NodeId`]
/// by the runner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Arrival of a foremost journey from `src` to `dst`.
    Foremost {
        /// Journey source.
        src: usize,
        /// Journey destination.
        dst: usize,
    },
    /// How many nodes `src` reaches (one row of the reachability
    /// matrix).
    Matrix {
        /// Row source.
        src: usize,
    },
    /// How many nodes a beaconing broadcast from `src` informs (the
    /// source re-emits at every instant from the request's start).
    Broadcast {
        /// Broadcast source.
        src: usize,
    },
}

impl Request {
    /// The request's source node index.
    #[must_use]
    pub fn src(&self) -> usize {
        match self {
            Request::Foremost { src, .. }
            | Request::Matrix { src }
            | Request::Broadcast { src } => *src,
        }
    }

    /// The spec-facing kind name.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Foremost { .. } => "foremost",
            Request::Matrix { .. } => "matrix",
            Request::Broadcast { .. } => "broadcast",
        }
    }
}

/// A request stamped with its logical arrival instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRequest {
    /// Logical arrival instant on the schedule clock.
    pub at: u64,
    /// The query itself.
    pub request: Request,
}

/// The parameters of a synthetic load: how many requests, how they are
/// spaced, what mix of kinds, and over how many nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Total requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap in instants (geometric with success
    /// probability `1 / mean_gap`; `1` means back-to-back arrivals).
    pub mean_gap: u64,
    /// Integer weights of the `(foremost, matrix, broadcast)` mix.
    pub mix: (u64, u64, u64),
    /// Node-index range requests draw sources/destinations from.
    pub nodes: usize,
    /// Arrival clock origin (the first request arrives at or after
    /// this instant).
    pub seed_instant: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates the admission queue: `spec.requests` timed requests in
/// arrival order, fully determined by the spec.
///
/// # Panics
///
/// Panics if the spec is degenerate (`nodes == 0`, `mean_gap == 0`, or
/// an all-zero mix) — the scenario layer validates these at parse time,
/// so hitting one here is a caller bug.
#[must_use]
pub fn generate_load(spec: &LoadSpec) -> Vec<TimedRequest> {
    assert!(spec.nodes > 0, "load needs a nonempty node range");
    assert!(spec.mean_gap > 0, "mean gap must be at least one instant");
    let (wf, wm, wb) = spec.mix;
    let total_weight = wf + wm + wb;
    assert!(total_weight > 0, "mix must have a positive weight");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Probability that the next instant fires an arrival. Exact for
    // mean_gap = 1 (back-to-back); the f64 division is a power-free
    // constant, identical on every platform.
    #[allow(clippy::cast_precision_loss)]
    let fire = 1.0 / spec.mean_gap as f64;
    let mut at = spec.seed_instant;
    let mut out = Vec::with_capacity(spec.requests);
    for _ in 0..spec.requests {
        // Geometric gap: count failures before the next success,
        // saturating instead of overflowing the clock.
        while !rng.gen_bool(fire) {
            at = at.saturating_add(1);
        }
        let src = rng.gen_range(0..spec.nodes);
        let pick = rng.gen_range(0..total_weight);
        let request = if pick < wf {
            let dst = rng.gen_range(0..spec.nodes);
            Request::Foremost { src, dst }
        } else if pick < wf + wm {
            Request::Matrix { src }
        } else {
            Request::Broadcast { src }
        };
        out.push(TimedRequest { at, request });
        at = at.saturating_add(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LoadSpec {
        LoadSpec {
            requests: 64,
            mean_gap: 3,
            mix: (4, 2, 1),
            nodes: 10,
            seed_instant: 0,
            seed: 7,
        }
    }

    #[test]
    fn load_is_deterministic_and_ordered() {
        let a = generate_load(&spec());
        let b = generate_load(&spec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().all(|r| r.request.src() < 10));
        // A different seed produces a different queue.
        let other = generate_load(&LoadSpec { seed: 8, ..spec() });
        assert_ne!(a, other);
    }

    #[test]
    fn mix_weights_select_kinds() {
        // All weight on one kind pins every request to it.
        let only_matrix = generate_load(&LoadSpec {
            mix: (0, 5, 0),
            ..spec()
        });
        assert!(only_matrix
            .iter()
            .all(|r| matches!(r.request, Request::Matrix { .. })));
        // The default mix produces all three kinds over 64 draws.
        let mixed = generate_load(&spec());
        for kind in ["foremost", "matrix", "broadcast"] {
            assert!(
                mixed.iter().any(|r| r.request.kind() == kind),
                "mix starves {kind}"
            );
        }
    }

    #[test]
    fn unit_gap_is_back_to_back() {
        let tight = generate_load(&LoadSpec {
            mean_gap: 1,
            ..spec()
        });
        // gen_bool(1.0) always fires: arrivals are consecutive instants.
        assert!(tight.windows(2).all(|w| w[1].at == w[0].at + 1));
    }
}
