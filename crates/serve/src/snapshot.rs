//! Epoch-published immutable snapshots of a live schedule.
//!
//! The serve runtime's single writer turns a [`tvg_model::TvgStream`]
//! into a sequence of [`ServeSnapshot`]s — one per ingest tick, each an
//! immutable structure-sharing view of the live index tagged with its
//! epoch — and publishes them through an [`EpochRing`]. The live
//! index's persistent chunked columns (`tvg_model::pcol`) make each
//! publication O(changes in the tick): the snapshot shares every frozen
//! chunk with the live index, and the stream copies-on-write only the
//! chunks the next tick's mutations land in. Publication is RCU-style:
//! readers never take a lock, never block the writer, and a reader
//! holding an `Arc<ServeSnapshot>` keeps answering from that epoch no
//! matter how far the writer has advanced.
//!
//! The ring is built from safe primitives only (the workspace forbids
//! `unsafe`): one `OnceLock` slot per epoch plus a release/acquire
//! publication counter. The writer fills slot `e` and then bumps the
//! counter; a reader that observes `published > e` is guaranteed (by
//! the release/acquire pair) to see the fully initialized slot. The
//! fast path for a reader is one atomic load, one `OnceLock::get`, and
//! one `Arc` clone — no CAS loop, no contention with other readers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tvg_model::stream::LiveIndex;
use tvg_model::{EdgeId, EdgeRefs, IntervalSet, NodeId, SpanView, TemporalIndex, Time, Tvg};

/// One immutable view of the schedule as of a publication epoch.
///
/// Epoch 0 is the state before any ingest tick; epoch `i + 1` is the
/// state after tick `i`. The wrapped [`LiveIndex`] is a persistent
/// snapshot: it *shares* every frozen chunk with the stream's live
/// index (copy-on-write keeps later mutations away from it), so the
/// snapshot answers queries forever unchanged — the pinning property
/// the `servecheck` oracle pins byte-for-byte — while costing
/// O(changes), not O(index), to take.
#[derive(Debug, Clone)]
pub struct ServeSnapshot<T> {
    epoch: u64,
    index: LiveIndex<T>,
}

impl<T: Time> ServeSnapshot<T> {
    /// Wraps an index snapshot as the view of `epoch`.
    #[must_use]
    pub fn new(epoch: u64, index: LiveIndex<T>) -> Self {
        ServeSnapshot { epoch, index }
    }

    /// The publication epoch this snapshot represents.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen index behind this snapshot.
    #[must_use]
    pub fn index(&self) -> &LiveIndex<T> {
        &self.index
    }

    /// The underlying TVG this snapshot froze.
    #[must_use]
    pub fn tvg(&self) -> &Tvg<T> {
        self.index.tvg()
    }

    /// The horizon the snapshot answers under.
    #[must_use]
    pub fn horizon(&self) -> &T {
        self.index.horizon()
    }

    /// The frozen presence intervals of `e` in native form.
    #[must_use]
    pub fn presence(&self, e: EdgeId) -> &IntervalSet<T> {
        self.index.presence(e)
    }

    /// Whether arrival is monotone over departures for `e`.
    #[must_use]
    pub fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        self.index.arrival_is_monotone(e)
    }

    /// The out-edges of `n` as a native slice.
    #[must_use]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        self.index.out_edges(n)
    }

    /// The destination of `e`.
    #[must_use]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.index.dst(e)
    }

    /// Arrival of a crossing of `e` departing at `t`, if present.
    #[must_use]
    pub fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        self.index.arrival(e, t)
    }
}

/// A snapshot answers exactly like the live index it froze: every
/// consumer generic over [`TemporalIndex`] (the engine, the batch
/// runtime, the simulators) accepts it — and, via the model crate's
/// blanket impl, an `Arc<ServeSnapshot>` too.
impl<T: Time> TemporalIndex<T> for ServeSnapshot<T> {
    fn num_nodes(&self) -> usize {
        self.index.tvg().num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.index.tvg().num_edges()
    }

    fn horizon(&self) -> &T {
        self.index.horizon()
    }

    fn presence(&self, e: EdgeId) -> SpanView<'_, T> {
        ServeSnapshot::presence(self, e).view()
    }

    fn arrival_is_monotone(&self, e: EdgeId) -> bool {
        self.index.arrival_is_monotone(e)
    }

    fn out_edges(&self, n: NodeId) -> EdgeRefs<'_> {
        EdgeRefs::Ids(ServeSnapshot::out_edges(self, n))
    }

    fn dst(&self, e: EdgeId) -> NodeId {
        self.index.dst(e)
    }

    fn arrival(&self, e: EdgeId, t: &T) -> Option<T> {
        self.index.arrival(e, t)
    }
}

/// The lock-free publication channel between one writer and any number
/// of readers: a fixed ring of epoch slots plus a publication counter.
///
/// Capacity is fixed at construction (a serve run knows its tick count
/// up front: `ticks + 1` epochs), which is what lets slots be plain
/// `OnceLock`s — every epoch is written exactly once, in order, and
/// stays readable for the rest of the run.
#[derive(Debug)]
pub struct EpochRing<T> {
    slots: Vec<OnceLock<Arc<ServeSnapshot<T>>>>,
    published: AtomicUsize,
}

impl<T: Time> EpochRing<T> {
    /// An empty ring with room for `capacity` epochs (`0..capacity`).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, OnceLock::new);
        EpochRing {
            slots,
            published: AtomicUsize::new(0),
        }
    }

    /// Total epochs this ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// How many epochs are published so far (readers may [`Self::get`]
    /// any epoch below this count).
    #[must_use]
    pub fn published(&self) -> usize {
        self.published.load(Ordering::Acquire)
    }

    /// Publishes the next epoch. Writer-side only, epochs in order:
    /// `snapshot.epoch()` must equal the current published count.
    ///
    /// The slot write happens-before the counter bump (release), so any
    /// reader that observes the new count sees the initialized slot.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full, the epoch is out of order, or the
    /// slot was somehow already set (a second writer).
    pub fn publish(&self, snapshot: ServeSnapshot<T>) {
        let next = self.published.load(Ordering::Relaxed);
        assert!(next < self.slots.len(), "epoch ring is full");
        assert_eq!(
            snapshot.epoch(),
            next as u64,
            "epochs publish in order (expected {next})"
        );
        self.slots[next]
            .set(Arc::new(snapshot))
            .unwrap_or_else(|_| panic!("epoch {next} published twice"));
        self.published.store(next + 1, Ordering::Release);
    }

    /// The snapshot of `epoch`, if it has been published yet. Readers
    /// call this freely from any thread; it never blocks.
    #[must_use]
    pub fn get(&self, epoch: u64) -> Option<Arc<ServeSnapshot<T>>> {
        let published = self.published.load(Ordering::Acquire) as u64;
        if epoch >= published {
            return None;
        }
        let slot = usize::try_from(epoch).expect("published epochs fit in usize");
        self.slots[slot].get().cloned()
    }

    /// The most recently published snapshot, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Arc<ServeSnapshot<T>>> {
        match self.published.load(Ordering::Acquire) {
            0 => None,
            n => self.slots[n - 1].get().cloned(),
        }
    }

    /// Blocks (spin + yield) until `epoch` is published, then returns
    /// it. Used by readers whose dequeued query is pinned to an epoch
    /// the writer has not reached yet.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is beyond the ring's capacity — such an epoch
    /// can never be published, so waiting would hang forever.
    #[must_use]
    pub fn wait(&self, epoch: u64) -> Arc<ServeSnapshot<T>> {
        assert!(
            epoch < self.capacity() as u64,
            "epoch {epoch} exceeds ring capacity {}",
            self.capacity()
        );
        loop {
            if let Some(snapshot) = self.get(epoch) {
                return snapshot;
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvg_model::stream::TvgStream;
    use tvg_model::Latency;

    fn snapshot_at(epoch: u64) -> ServeSnapshot<u64> {
        let mut s = TvgStream::new(10).expect("representable");
        s.add_node("a");
        ServeSnapshot::new(epoch, s.snapshot())
    }

    #[test]
    fn publication_order_and_visibility() {
        let ring: EpochRing<u64> = EpochRing::new(3);
        assert_eq!(ring.published(), 0);
        assert!(ring.get(0).is_none());
        assert!(ring.latest().is_none());
        ring.publish(snapshot_at(0));
        ring.publish(snapshot_at(1));
        assert_eq!(ring.published(), 2);
        assert_eq!(ring.get(0).expect("published").epoch(), 0);
        assert_eq!(ring.latest().expect("published").epoch(), 1);
        // Unpublished epochs are invisible, not errors.
        assert!(ring.get(2).is_none());
        ring.publish(snapshot_at(2));
        assert_eq!(ring.wait(2).epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "epochs publish in order")]
    fn out_of_order_publication_is_rejected() {
        let ring: EpochRing<u64> = EpochRing::new(3);
        ring.publish(snapshot_at(1));
    }

    #[test]
    fn snapshots_answer_like_their_source() {
        let mut s = TvgStream::<u64>::new(10).expect("representable");
        let u = s.add_node("u");
        let v = s.add_node("v");
        let e = s.add_edge(u, v, 'a', Latency::unit()).expect("valid");
        s.ingest(&[tvg_model::stream::StreamEvent::Up { edge: e, at: 2 }])
            .expect("valid feed");
        let snap = Arc::new(ServeSnapshot::new(0, s.snapshot()));
        // The Arc'd snapshot is a TemporalIndex in its own right.
        assert!(snap.is_present(e, &4));
        assert_eq!(snap.presence(e).spans(), s.index().presence(e).spans());
        assert_eq!(snap.out_edges(u).to_vec(), s.index().out_edges(u));
        // ...and stays frozen while the stream moves on.
        s.ingest(&[tvg_model::stream::StreamEvent::Down { edge: e, at: 5 }])
            .expect("valid feed");
        assert_eq!(snap.presence(e).spans(), &[(2, 11)]);
        assert_eq!(s.index().presence(e).spans(), &[(2, 5)]);
    }
}
