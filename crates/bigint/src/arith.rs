//! Addition, subtraction, multiplication, and bit shifts for [`Nat`].

use crate::Nat;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};

impl Nat {
    /// Checked subtraction: `self - other`, or `None` if `other > self`.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert_eq!(Nat::from(5u64).checked_sub(&Nat::from(3u64)), Some(Nat::from(2u64)));
    /// assert_eq!(Nat::from(3u64).checked_sub(&Nat::from(5u64)), None);
    /// ```
    #[must_use]
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(d as u32);
        }
        debug_assert_eq!(borrow, 0, "underflow despite ordering check");
        Some(Nat::from_limbs(limbs))
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    #[must_use]
    pub fn saturating_sub(&self, other: &Nat) -> Nat {
        self.checked_sub(other).unwrap_or_else(Nat::zero)
    }

    /// Adds a small value in place.
    pub fn add_small(&mut self, v: u32) {
        let mut carry = u64::from(v);
        let mut i = 0;
        while carry != 0 {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            let sum = u64::from(self.limbs[i]) + carry;
            self.limbs[i] = sum as u32;
            carry = sum >> 32;
            i += 1;
        }
    }

    /// Multiplies by a small value in place.
    pub fn mul_small(&mut self, v: u32) {
        if v == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry: u64 = 0;
        for limb in &mut self.limbs {
            let prod = u64::from(*limb) * u64::from(v) + carry;
            *limb = prod as u32;
            carry = prod >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// `self + 1`, consuming nothing.
    #[must_use]
    pub fn succ(&self) -> Nat {
        let mut n = self.clone();
        n.add_small(1);
        n
    }

    fn add_assign_ref(&mut self, other: &Nat) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry: u64 = 0;
        for i in 0..self.limbs.len() {
            let sum = u64::from(self.limbs[i])
                + u64::from(other.limbs.get(i).copied().unwrap_or(0))
                + carry;
            self.limbs[i] = sum as u32;
            carry = sum >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    fn mul_ref(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let mut acc = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                // acc slot + product + carry never overflows u64 as long as we
                // drain carries every step: max = (2^32-1)^2 + 2*(2^32-1) < 2^64.
                let cur = acc[i + j] + u64::from(a) * u64::from(b) + carry;
                acc[i + j] = cur & 0xFFFF_FFFF;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = acc[k] + carry;
                acc[k] = cur & 0xFFFF_FFFF;
                carry = cur >> 32;
                k += 1;
            }
        }
        Nat::from_limbs(acc.into_iter().map(|x| x as u32).collect())
    }

    /// Left shift by `bits` bit positions.
    #[must_use]
    pub fn shl_bits(&self, bits: usize) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Nat::from_limbs(limbs)
    }

    /// Right shift by `bits` bit positions.
    #[must_use]
    pub fn shr_bits(&self, bits: usize) -> Nat {
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((src[i] >> bit_shift) | (hi << (32 - bit_shift)));
            }
        }
        Nat::from_limbs(limbs)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:ident) => {
        impl $trait<&Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                self.$impl_fn(rhs)
            }
        }
        impl $trait<Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                (&self).$impl_fn(&rhs)
            }
        }
        impl $trait<&Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                (&self).$impl_fn(rhs)
            }
        }
        impl $trait<Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                self.$impl_fn(&rhs)
            }
        }
    };
}

impl Nat {
    fn add_impl(&self, rhs: &Nat) -> Nat {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }

    fn sub_impl(&self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs)
            .expect("attempt to subtract a larger Nat from a smaller one")
    }

    fn mul_impl(&self, rhs: &Nat) -> Nat {
        self.mul_ref(rhs)
    }
}

forward_binop!(Add, add, add_impl);
forward_binop!(Sub, sub, sub_impl);
forward_binop!(Mul, mul, mul_impl);

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        self.add_assign_ref(rhs);
    }
}

impl AddAssign<Nat> for Nat {
    fn add_assign(&mut self, rhs: Nat) {
        self.add_assign_ref(&rhs);
    }
}

impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        *self = self.sub_impl(rhs);
    }
}

impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<usize> for &Nat {
    type Output = Nat;
    fn shl(self, bits: usize) -> Nat {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Nat {
    type Output = Nat;
    fn shr(self, bits: usize) -> Nat {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn add_with_carries() {
        assert_eq!(n(u128::from(u64::MAX)) + n(1), n(u128::from(u64::MAX) + 1));
        assert_eq!(n(0) + n(0), n(0));
        assert_eq!(n(5) + n(7), n(12));
    }

    #[test]
    fn add_ref_forms() {
        let a = n(10);
        let b = n(32);
        assert_eq!(&a + &b, n(42));
        assert_eq!(a.clone() + &b, n(42));
        assert_eq!(&a + b.clone(), n(42));
        assert_eq!(a + b, n(42));
    }

    #[test]
    fn sub_basics() {
        assert_eq!(n(100) - n(1), n(99));
        assert_eq!(n(1 << 64) - n(1), n((1 << 64) - 1));
        assert_eq!(n(7) - n(7), n(0));
    }

    #[test]
    #[should_panic(expected = "subtract a larger")]
    fn sub_underflow_panics() {
        let _ = n(3) - n(5);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(n(3).saturating_sub(&n(5)), n(0));
        assert_eq!(n(5).saturating_sub(&n(3)), n(2));
    }

    #[test]
    fn mul_cross_limb() {
        assert_eq!(
            n(u128::from(u64::MAX)) * n(u128::from(u64::MAX)),
            n(u128::from(u64::MAX) * u128::from(u64::MAX))
        );
        assert_eq!(n(0) * n(12345), n(0));
        assert_eq!(n(1) * n(12345), n(12345));
    }

    #[test]
    fn mul_small_and_add_small() {
        let mut x = n(999_999_999);
        x.mul_small(1_000_000_000);
        x.add_small(999_999_999);
        assert_eq!(x, n(999_999_999_999_999_999));
        let mut z = n(5);
        z.mul_small(0);
        assert_eq!(z, n(0));
    }

    #[test]
    fn shifts_match_u128() {
        for v in [1u128, 0xDEAD_BEEF, u128::from(u64::MAX)] {
            for s in [0usize, 1, 31, 32, 33, 63] {
                assert_eq!(n(v).shl_bits(s), n(v << s), "shl {v} {s}");
                assert_eq!(n(v).shr_bits(s), n(v >> s), "shr {v} {s}");
            }
        }
        assert_eq!(n(1).shr_bits(1), n(0));
    }

    #[test]
    fn succ_increments() {
        assert_eq!(n(0).succ(), n(1));
        assert_eq!(n(u128::from(u64::MAX)).succ(), n(u128::from(u64::MAX) + 1));
    }

    #[test]
    fn assign_ops() {
        let mut x = n(40);
        x += &n(2);
        assert_eq!(x, n(42));
        x -= &n(2);
        assert_eq!(x, n(40));
        x *= &n(3);
        assert_eq!(x, n(120));
    }
}
