//! Division and remainder for [`Nat`].

use crate::Nat;
use std::ops::{Div, Rem};

impl Nat {
    /// Simultaneous quotient and remainder: `(self / divisor, self % divisor)`.
    ///
    /// Uses a fast limb loop when `divisor` fits in a single limb and binary
    /// long division otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// let (q, r) = Nat::from(100u64).div_rem(&Nat::from(7u64));
    /// assert_eq!((q, r), (Nat::from(14u64), Nat::from(2u64)));
    /// ```
    #[must_use]
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero Nat");
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_small(divisor.limbs[0]);
            return (q, Nat::from(r));
        }
        if self < divisor {
            return (Nat::zero(), self.clone());
        }
        // Binary long division: O(bits(self) * limbs). Fine for the sizes
        // the schedule constructions produce (a few thousand bits).
        let shift = self.bits() - divisor.bits();
        let mut rem = self.clone();
        let mut quot = Nat::zero();
        for s in (0..=shift).rev() {
            let d = divisor.shl_bits(s);
            if let Some(next) = rem.checked_sub(&d) {
                rem = next;
                quot = quot.set_bit(s);
            }
        }
        (quot, rem)
    }

    /// Quotient and remainder by a single-limb divisor.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem_small(&self, divisor: u32) -> (Nat, u32) {
        assert!(divisor != 0, "division by zero");
        let d = u64::from(divisor);
        let mut rem: u64 = 0;
        let mut limbs = vec![0u32; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | u64::from(self.limbs[i]);
            limbs[i] = (cur / d) as u32;
            rem = cur % d;
        }
        (Nat::from_limbs(limbs), rem as u32)
    }

    /// Returns `true` iff `divisor` divides `self` exactly.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert!(Nat::from(12u64).is_multiple_of(&Nat::from(4u64)));
    /// assert!(!Nat::from(12u64).is_multiple_of(&Nat::from(5u64)));
    /// ```
    #[must_use]
    pub fn is_multiple_of(&self, divisor: &Nat) -> bool {
        if divisor.is_zero() {
            return self.is_zero();
        }
        self.div_rem(divisor).1.is_zero()
    }

    /// Greatest common divisor (binary-free Euclid via `div_rem`).
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert_eq!(Nat::from(48u64).gcd(&Nat::from(18u64)), Nat::from(6u64));
    /// ```
    #[must_use]
    pub fn gcd(&self, other: &Nat) -> Nat {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// Returns `self` with bit `i` set.
    fn set_bit(mut self, i: usize) -> Nat {
        let (limb, off) = (i / 32, i % 32);
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
        self
    }
}

impl Div<&Nat> for &Nat {
    type Output = Nat;
    fn div(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).0
    }
}

impl Div<Nat> for Nat {
    type Output = Nat;
    fn div(self, rhs: Nat) -> Nat {
        self.div_rem(&rhs).0
    }
}

impl Rem<&Nat> for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).1
    }
}

impl Rem<Nat> for Nat {
    type Output = Nat;
    fn rem(self, rhs: Nat) -> Nat {
        self.div_rem(&rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn div_rem_matches_u128() {
        let cases = [
            (0u128, 1u128),
            (1, 1),
            (100, 7),
            (u128::from(u64::MAX), 3),
            (u128::MAX / 2, 0xFFFF_FFFF_FFFF),
            (1 << 100, (1 << 40) + 17),
        ];
        for (a, b) in cases {
            let (q, r) = n(a).div_rem(&n(b));
            assert_eq!(q, n(a / b), "{a}/{b}");
            assert_eq!(r, n(a % b), "{a}%{b}");
        }
    }

    #[test]
    fn div_smaller_by_larger_is_zero() {
        let (q, r) = n(5).div_rem(&n(100));
        assert_eq!(q, n(0));
        assert_eq!(r, n(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(5).div_rem(&Nat::zero());
    }

    #[test]
    fn div_rem_small_matches() {
        let big = n(0xFEED_FACE_CAFE_BEEF_DEAD_BEEF);
        let (q, r) = big.div_rem_small(1_000_000_000);
        assert_eq!(q, n(0xFEED_FACE_CAFE_BEEF_DEAD_BEEF / 1_000_000_000));
        assert_eq!(
            u128::from(r),
            0xFEED_FACE_CAFE_BEEF_DEAD_BEEF % 1_000_000_000
        );
    }

    #[test]
    fn exact_division_detected() {
        let p40 = Nat::from(2u64).pow(40);
        assert!(p40.is_multiple_of(&Nat::from(2u64).pow(39)));
        assert!(!p40.succ().is_multiple_of(&Nat::from(2u64)));
        assert!(Nat::zero().is_multiple_of(&Nat::zero()));
        assert!(!n(5).is_multiple_of(&Nat::zero()));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(31)), n(1));
    }

    #[test]
    fn operator_forms() {
        assert_eq!(&n(10) / &n(3), n(3));
        assert_eq!(&n(10) % &n(3), n(1));
        assert_eq!(n(10) / n(3), n(3));
        assert_eq!(n(10) % n(3), n(1));
    }

    #[test]
    fn big_division_roundtrip() {
        // (q * d + r) == original, r < d — the defining property, on values
        // far beyond u128.
        let a = Nat::from(7u64).pow(100);
        let d = Nat::from(13u64).pow(35);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(q * d + r, a);
    }
}
