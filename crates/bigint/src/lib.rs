//! Arbitrary-precision natural numbers for time-varying-graph schedules.
//!
//! The PODC'12 constructions reproduced by this workspace use *time as
//! unbounded memory*: after reading the word `aⁿbⁿ`, the Figure-1 automaton
//! of the paper sits at time `pⁿ·qⁿ⁻¹`, which overflows `u64` for `n ≳ 10`
//! even with the smallest primes. This crate provides the unbounded natural
//! number type [`Nat`] those schedules are evaluated over.
//!
//! The implementation is deliberately self-contained (no dependencies):
//! little-endian base-2³² limbs, schoolbook multiplication, binary long
//! division, decimal I/O, modular exponentiation, Miller–Rabin primality,
//! and prime-power decomposition (the primitive behind the paper's
//! `t = pⁱ·qⁱ⁻¹` presence predicate).
//!
//! # Examples
//!
//! ```
//! use tvg_bigint::Nat;
//!
//! let p = Nat::from(2u64);
//! let q = Nat::from(3u64);
//! // The time reached by the Figure-1 automaton after reading a^40 b^39:
//! let t = p.pow(40) * q.pow(39);
//! assert_eq!(t.factor_out(&Nat::from(2u64)).0, 40);
//! assert_eq!(t.factor_out(&Nat::from(3u64)).0, 39);
//! assert!(t > Nat::from(u64::MAX));
//! ```
//!
//! Decimal round-trips:
//!
//! ```
//! use tvg_bigint::Nat;
//!
//! # fn main() -> Result<(), tvg_bigint::ParseNatError> {
//! let n: Nat = "340282366920938463463374607431768211456".parse()?;
//! assert_eq!(n, Nat::from(2u64).pow(128));
//! assert_eq!(n.to_string(), "340282366920938463463374607431768211456");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod div;
mod fmt;
mod nat;
mod pow;
mod prime;

pub use fmt::ParseNatError;
pub use nat::Nat;
pub use prime::is_prime_u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_compiles() {
        let p = Nat::from(2u64);
        let q = Nat::from(3u64);
        let t = p.pow(40) * q.pow(39);
        assert_eq!(t.factor_out(&Nat::from(2u64)).0, 40);
        assert!(t > Nat::from(u64::MAX));
    }
}
