//! Formatting and parsing for [`Nat`].

use crate::Nat;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Error produced when parsing a [`Nat`] from a string, or converting one to
/// a machine integer, fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseNatError {
    /// The input was empty.
    Empty,
    /// The input contained a non-decimal-digit character.
    InvalidDigit(char),
    /// The value does not fit in the requested machine integer type.
    Overflow,
}

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNatError::Empty => write!(f, "cannot parse natural number from empty string"),
            ParseNatError::InvalidDigit(c) => write!(f, "invalid digit {c:?} in natural number"),
            ParseNatError::Overflow => write!(f, "value does not fit in target integer type"),
        }
    }
}

impl Error for ParseNatError {}

impl FromStr for Nat {
    type Err = ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNatError::Empty);
        }
        let mut n = Nat::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseNatError::InvalidDigit(c))?;
            n.mul_small(10);
            n.add_small(d);
        }
        Ok(n)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel 9 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:09}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug shows the decimal value: limb vectors are meaningless to read.
        write!(f, "Nat({self})")
    }
}

impl fmt::LowerHex for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.limbs.last().expect("nonzero"));
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:08x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_small() {
        assert_eq!(Nat::zero().to_string(), "0");
        assert_eq!(Nat::from(42u64).to_string(), "42");
        assert_eq!(Nat::from(1_000_000_000u64).to_string(), "1000000000");
    }

    #[test]
    fn display_matches_u128() {
        for v in [
            1u128,
            999_999_999,
            1_000_000_000,
            u128::from(u64::MAX),
            u128::MAX,
        ] {
            assert_eq!(Nat::from(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn parse_roundtrip() {
        for s in [
            "0",
            "1",
            "4294967296",
            "340282366920938463463374607431768211455",
        ] {
            let n: Nat = s.parse().expect("valid");
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn parse_with_underscores() {
        let n: Nat = "1_000_000".parse().expect("valid");
        assert_eq!(n, Nat::from(1_000_000u64));
    }

    #[test]
    fn parse_errors() {
        assert_eq!("".parse::<Nat>(), Err(ParseNatError::Empty));
        assert_eq!("12x".parse::<Nat>(), Err(ParseNatError::InvalidDigit('x')));
        assert_eq!("-5".parse::<Nat>(), Err(ParseNatError::InvalidDigit('-')));
    }

    #[test]
    fn debug_is_nonempty_and_decimal() {
        assert_eq!(format!("{:?}", Nat::from(7u64)), "Nat(7)");
        assert_eq!(format!("{:?}", Nat::zero()), "Nat(0)");
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", Nat::zero()), "0");
        assert_eq!(format!("{:x}", Nat::from(0xDEAD_BEEFu64)), "deadbeef");
        assert_eq!(format!("{:x}", Nat::from(0x1_0000_0000u64)), "100000000");
        assert_eq!(format!("{:#x}", Nat::from(255u64)), "0xff");
    }

    #[test]
    fn error_messages_are_lowercase_without_period() {
        let msg = ParseNatError::InvalidDigit('z').to_string();
        assert!(msg.starts_with("invalid digit"));
        assert!(!msg.ends_with('.'));
    }
}
