//! The [`Nat`] type: representation, construction, conversion, comparison.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// An arbitrary-precision natural number (unsigned integer).
///
/// Stored as little-endian base-2³² limbs with no trailing zero limbs
/// (zero is the empty limb vector), so equality and hashing are structural.
///
/// # Examples
///
/// ```
/// use tvg_bigint::Nat;
///
/// let a = Nat::from(7u64);
/// let b = Nat::from(6u64);
/// assert_eq!((a * b).to_string(), "42");
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Nat {
    /// Little-endian limbs; invariant: no trailing zeros.
    pub(crate) limbs: Vec<u32>,
}

impl Nat {
    /// The value `0`.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert!(Nat::zero().is_zero());
    /// ```
    #[must_use]
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The value `1`.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert_eq!(Nat::one(), Nat::from(1u64));
    /// ```
    #[must_use]
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Returns `true` iff `self == 0`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff `self == 1`.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` iff the number is even (zero counts as even).
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert_eq!(Nat::from(255u64).bits(), 8);
    /// assert_eq!(Nat::zero().bits(), 0);
    /// ```
    #[must_use]
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of the bit at position `i` (little-endian, bit 0 is the LSB).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Remove trailing zero limbs to restore the canonical form.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Construct from little-endian limbs (normalizing).
    pub(crate) fn from_limbs(limbs: Vec<u32>) -> Self {
        let mut n = Nat { limbs };
        n.normalize();
        n
    }

    /// Converts to `u64` if the value fits.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert_eq!(Nat::from(42u64).to_u64(), Some(42));
    /// assert_eq!(Nat::from(2u64).pow(65).to_u64(), None);
    /// ```
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= u128::from(l) << (32 * i);
        }
        Some(v)
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        if v == 0 {
            Nat::zero()
        } else {
            Nat { limbs: vec![v] }
        }
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_limbs(vec![v as u32, (v >> 32) as u32])
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl From<usize> for Nat {
    fn from(v: usize) -> Self {
        Nat::from(v as u64)
    }
}

impl TryFrom<&Nat> for u64 {
    type Error = crate::ParseNatError;

    fn try_from(n: &Nat) -> Result<Self, Self::Error> {
        n.to_u64().ok_or(crate::ParseNatError::Overflow)
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl Hash for Nat {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.limbs.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical_empty() {
        assert!(Nat::zero().is_zero());
        assert_eq!(Nat::from(0u64), Nat::zero());
        assert_eq!(Nat::zero().bits(), 0);
    }

    #[test]
    fn one_is_one() {
        assert!(Nat::one().is_one());
        assert!(!Nat::zero().is_one());
        assert!(!Nat::from(2u64).is_one());
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 42, u64::from(u32::MAX), u64::MAX] {
            assert_eq!(Nat::from(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn from_u128_roundtrip() {
        for v in [0u128, 1, u128::from(u64::MAX) + 1, u128::MAX] {
            assert_eq!(Nat::from(v).to_u128(), Some(v));
        }
    }

    #[test]
    fn to_u64_overflow_detected() {
        let big = Nat::from(u128::from(u64::MAX) + 1);
        assert_eq!(big.to_u64(), None);
        assert!(u64::try_from(&big).is_err());
    }

    #[test]
    fn ordering_matches_u128() {
        let cases = [
            0u128,
            1,
            2,
            1 << 31,
            1 << 32,
            1 << 63,
            u128::from(u64::MAX),
            1 << 100,
        ];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(Nat::from(a).cmp(&Nat::from(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bits_counts() {
        assert_eq!(Nat::from(1u64).bits(), 1);
        assert_eq!(Nat::from(2u64).bits(), 2);
        assert_eq!(Nat::from(u64::MAX).bits(), 64);
        assert_eq!(Nat::from(1u128 << 64).bits(), 65);
    }

    #[test]
    fn bit_access() {
        let n = Nat::from(0b1010u64);
        assert!(!n.bit(0));
        assert!(n.bit(1));
        assert!(!n.bit(2));
        assert!(n.bit(3));
        assert!(!n.bit(100));
    }

    #[test]
    fn evenness() {
        assert!(Nat::zero().is_even());
        assert!(!Nat::one().is_even());
        assert!(Nat::from(1u128 << 64).is_even());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Nat::default(), Nat::zero());
    }
}
