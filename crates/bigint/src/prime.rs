//! Primality testing for [`Nat`].
//!
//! The Figure-1 construction requires two distinct primes `p, q > 1`; the
//! experiment harness validates its parameters with these routines, and the
//! unary-primes language of experiment E2 uses them as its reference decider.

use crate::Nat;

/// Miller–Rabin witnesses that make the test deterministic for all inputs
/// below 3.3 · 10²⁴ (Sorenson & Webster). Inputs used by this workspace are
/// far smaller; for larger inputs the test is a strong probable-prime test.
const WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

impl Nat {
    /// Returns `true` iff `self` is prime.
    ///
    /// Deterministic for every value below 3.3 · 10²⁴; a strong
    /// probable-prime test (13 fixed Miller–Rabin witnesses) beyond that.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert!(Nat::from(2u64).is_prime());
    /// assert!(Nat::from(1_000_000_007u64).is_prime());
    /// assert!(!Nat::from(1u64).is_prime());
    /// assert!(!Nat::from(561u64).is_prime()); // Carmichael number
    /// ```
    #[must_use]
    pub fn is_prime(&self) -> bool {
        let two = Nat::from(2u64);
        if *self < two {
            return false;
        }
        if self.is_even() {
            return *self == two;
        }
        // Small trial division to cheaply reject most composites.
        for d in [3u32, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            let dn = Nat::from(u64::from(d));
            if *self == dn {
                return true;
            }
            if self.is_multiple_of(&dn) {
                return false;
            }
        }
        // Write self - 1 = d * 2^r with d odd.
        let n_minus_1 = self.checked_sub(&Nat::one()).expect("self >= 2");
        let mut d = n_minus_1.clone();
        let mut r = 0usize;
        while d.is_even() {
            d = d.shr_bits(1);
            r += 1;
        }
        'witness: for &a in &WITNESSES {
            let a = Nat::from(a);
            if a >= *self {
                continue;
            }
            let mut x = a.mod_pow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..r - 1 {
                x = (&x * &x).div_rem(self).1;
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// The smallest prime strictly greater than `self`.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert_eq!(Nat::from(1u64).next_prime(), Nat::from(2u64));
    /// assert_eq!(Nat::from(13u64).next_prime(), Nat::from(17u64));
    /// ```
    #[must_use]
    pub fn next_prime(&self) -> Nat {
        let mut candidate = self.succ();
        let two = Nat::from(2u64);
        if candidate <= two {
            return two;
        }
        if candidate.is_even() {
            candidate.add_small(1);
        }
        while !candidate.is_prime() {
            candidate.add_small(2);
        }
        candidate
    }
}

/// Returns `true` iff `n` is prime, for machine-word inputs.
///
/// Convenience wrapper used by the unary-primes reference decider.
///
/// ```
/// use tvg_bigint::is_prime_u64;
/// assert!(is_prime_u64(2));
/// assert!(!is_prime_u64(91));
/// ```
#[must_use]
pub fn is_prime_u64(n: u64) -> bool {
    Nat::from(n).is_prime()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [
            2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
        ];
        for p in primes {
            assert!(Nat::from(p).is_prime(), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for c in [
            0u64, 1, 4, 6, 8, 9, 15, 21, 25, 27, 33, 35, 49, 51, 55, 57, 63, 91,
        ] {
            assert!(!Nat::from(c).is_prime(), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!Nat::from(c).is_prime(), "{c} is a Carmichael number");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(Nat::from(u64::MAX - 58).is_prime()); // 2^64 - 59 is prime
        assert!(Nat::from(2_147_483_647u64).is_prime()); // 2^31 - 1 (Mersenne)
        assert!("170141183460469231731687303715884105727"
            .parse::<Nat>()
            .expect("valid")
            .is_prime()); // 2^127 - 1 (Mersenne)
    }

    #[test]
    fn large_composites() {
        // 2^127 - 1 is prime, 2^127 + 1 isn't (divisible by 3).
        let m127 = Nat::from(2u64).pow(127) + Nat::one();
        assert!(!m127.is_prime());
        let square = Nat::from(1_000_003u64) * Nat::from(1_000_003u64);
        assert!(!square.is_prime());
    }

    #[test]
    fn next_prime_walks_forward() {
        assert_eq!(Nat::zero().next_prime(), Nat::from(2u64));
        assert_eq!(Nat::from(2u64).next_prime(), Nat::from(3u64));
        assert_eq!(Nat::from(3u64).next_prime(), Nat::from(5u64));
        assert_eq!(Nat::from(89u64).next_prime(), Nat::from(97u64));
        assert_eq!(Nat::from(100u64).next_prime(), Nat::from(101u64));
    }

    #[test]
    fn prime_count_to_100() {
        let count = (0u64..=100).filter(|&n| is_prime_u64(n)).count();
        assert_eq!(count, 25);
    }
}
