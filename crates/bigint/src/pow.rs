//! Exponentiation and factor extraction for [`Nat`].

use crate::Nat;

impl Nat {
    /// `self` raised to the power `exp` (square-and-multiply).
    ///
    /// `0⁰` is defined as `1`, matching `u64::pow`.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// assert_eq!(Nat::from(2u64).pow(10), Nat::from(1024u64));
    /// assert_eq!(Nat::from(0u64).pow(0), Nat::one());
    /// ```
    #[must_use]
    pub fn pow(&self, exp: u32) -> Nat {
        let mut result = Nat::one();
        let mut base = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result *= &base;
            }
            e >>= 1;
            if e > 0 {
                let b = base.clone();
                base *= &b;
            }
        }
        result
    }

    /// Modular exponentiation: `self^exp mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// let r = Nat::from(5u64).mod_pow(&Nat::from(117u64), &Nat::from(19u64));
    /// assert_eq!(r, Nat::from(1u64)); // 5^117 ≡ 1 (mod 19) by Fermat
    /// ```
    #[must_use]
    pub fn mod_pow(&self, exp: &Nat, modulus: &Nat) -> Nat {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        if modulus.is_one() {
            return Nat::zero();
        }
        let mut result = Nat::one();
        let mut base = self.div_rem(modulus).1;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = (&result * &base).div_rem(modulus).1;
            }
            if i + 1 < exp.bits() {
                base = (&base * &base).div_rem(modulus).1;
            }
        }
        result
    }

    /// Removes all factors of `base` from `self`: returns `(k, cofactor)`
    /// with `self = base^k * cofactor` and `base ∤ cofactor`.
    ///
    /// This is the arithmetic primitive behind the paper's Table-1 presence
    /// predicate `ρ(e₄, t) = 1 ⇔ t = pⁱqⁱ⁻¹, i > 1`: decompose `t` over
    /// `{p, q}` and compare multiplicities.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2` or `self` is zero.
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// let t = Nat::from(2u64).pow(5) * Nat::from(3u64).pow(4);
    /// let (k, rest) = t.factor_out(&Nat::from(2u64));
    /// assert_eq!(k, 5);
    /// assert_eq!(rest, Nat::from(3u64).pow(4));
    /// ```
    #[must_use]
    pub fn factor_out(&self, base: &Nat) -> (u32, Nat) {
        assert!(*base >= Nat::from(2u64), "factor_out base must be >= 2");
        assert!(!self.is_zero(), "cannot factor zero");
        let mut k = 0;
        let mut cur = self.clone();
        loop {
            let (q, r) = cur.div_rem(base);
            if r.is_zero() {
                cur = q;
                k += 1;
            } else {
                return (k, cur);
            }
        }
    }

    /// Decomposes `self` as `p^α · q^β` if it has no other prime factors.
    ///
    /// Returns `None` when a cofactor other than 1 remains. `p` and `q` must
    /// be distinct and ≥ 2 (they need not be prime for the decomposition to
    /// be computed, but uniqueness is only guaranteed for primes).
    ///
    /// ```
    /// use tvg_bigint::Nat;
    /// let p = Nat::from(2u64);
    /// let q = Nat::from(3u64);
    /// let t = p.pow(7) * q.pow(6);
    /// assert_eq!(t.decompose_pq(&p, &q), Some((7, 6)));
    /// assert_eq!(t.succ().decompose_pq(&p, &q), None);
    /// ```
    #[must_use]
    pub fn decompose_pq(&self, p: &Nat, q: &Nat) -> Option<(u32, u32)> {
        if self.is_zero() {
            return None;
        }
        let (alpha, rest) = self.factor_out(p);
        let (beta, rest) = rest.factor_out(q);
        rest.is_one().then_some((alpha, beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_matches_u128() {
        for (b, e) in [
            (2u128, 0u32),
            (2, 1),
            (2, 100),
            (3, 63),
            (10, 30),
            (1, 999),
            (0, 5),
        ] {
            let expected = if b == 0 && e == 0 {
                Nat::one()
            } else if b == 0 {
                Nat::zero()
            } else if e <= 127 && b.checked_pow(e).is_some() {
                Nat::from(b.pow(e))
            } else {
                continue;
            };
            assert_eq!(Nat::from(b).pow(e), expected, "{b}^{e}");
        }
    }

    #[test]
    fn pow_large_values() {
        let x = Nat::from(2u64).pow(128);
        assert_eq!(x, Nat::from(u128::MAX) + Nat::one());
        assert_eq!(Nat::from(2u64).pow(256).bits(), 257);
    }

    #[test]
    fn mod_pow_fermat() {
        // a^(p-1) ≡ 1 (mod p) for prime p, gcd(a,p)=1.
        let p = Nat::from(1_000_000_007u64);
        let a = Nat::from(123_456_789u64);
        assert_eq!(a.mod_pow(&(p.clone() - Nat::one()), &p), Nat::one());
    }

    #[test]
    fn mod_pow_edges() {
        assert_eq!(
            Nat::from(5u64).mod_pow(&Nat::zero(), &Nat::from(7u64)),
            Nat::one()
        );
        assert_eq!(
            Nat::from(5u64).mod_pow(&Nat::from(3u64), &Nat::one()),
            Nat::zero()
        );
    }

    #[test]
    fn factor_out_multiplicity() {
        let t = Nat::from(2u64).pow(12) * Nat::from(5u64).pow(3);
        let (k, rest) = t.factor_out(&Nat::from(2u64));
        assert_eq!(k, 12);
        assert_eq!(rest, Nat::from(125u64));
        let (k5, rest5) = rest.factor_out(&Nat::from(5u64));
        assert_eq!(k5, 3);
        assert!(rest5.is_one());
    }

    #[test]
    fn factor_out_none_present() {
        let (k, rest) = Nat::from(35u64).factor_out(&Nat::from(2u64));
        assert_eq!(k, 0);
        assert_eq!(rest, Nat::from(35u64));
    }

    #[test]
    fn decompose_pq_exact_and_reject() {
        let p = Nat::from(5u64);
        let q = Nat::from(7u64);
        let t = p.pow(3) * q.pow(2);
        assert_eq!(t.decompose_pq(&p, &q), Some((3, 2)));
        // Extra factor of 11 must be rejected.
        let t2 = t * Nat::from(11u64);
        assert_eq!(t2.decompose_pq(&p, &q), None);
        // 1 = p^0 q^0.
        assert_eq!(Nat::one().decompose_pq(&p, &q), Some((0, 0)));
        assert_eq!(Nat::zero().decompose_pq(&p, &q), None);
    }
}
