//! Property-based tests for `Nat` arithmetic, cross-checked against `u128`
//! and against algebraic laws that hold beyond machine range.

use proptest::prelude::*;
use tvg_bigint::Nat;

fn nat(v: u128) -> Nat {
    Nat::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(nat(a as u128) + nat(b as u128), nat(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(nat(a as u128) * nat(b as u128), nat(a as u128 * b as u128));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(nat(hi) - nat(lo), nat(hi - lo));
        if hi != lo {
            prop_assert_eq!(nat(lo).checked_sub(&nat(hi)), None);
        }
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = nat(a).div_rem(&nat(b));
        prop_assert_eq!(q, nat(a / b));
        prop_assert_eq!(r, nat(a % b));
    }

    #[test]
    fn add_commutes_beyond_machine_range(a in any::<u128>(), b in any::<u128>(), s in 0usize..200) {
        let x = nat(a).shl_bits(s);
        let y = nat(b);
        prop_assert_eq!(&x + &y, &y + &x);
    }

    #[test]
    fn mul_distributes_over_add(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), s in 0usize..100) {
        let a = nat(a as u128).shl_bits(s);
        let b = nat(b as u128);
        let c = nat(c as u128);
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn div_rem_is_inverse_of_mul_add(a in any::<u128>(), d in 1u128.., s in 0usize..150) {
        let a = nat(a).shl_bits(s);
        let d = nat(d);
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q * d + r, a);
    }

    #[test]
    fn decimal_roundtrip(a in any::<u128>(), s in 0usize..150) {
        let n = nat(a).shl_bits(s);
        let parsed: Nat = n.to_string().parse().expect("display output must parse");
        prop_assert_eq!(parsed, n);
    }

    #[test]
    fn ordering_is_total_and_consistent(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(nat(a).cmp(&nat(b)), a.cmp(&b));
    }

    #[test]
    fn shifts_invert(a in any::<u128>(), s in 0usize..300) {
        let n = nat(a);
        prop_assert_eq!(n.shl_bits(s).shr_bits(s), n);
    }

    #[test]
    fn pow_splits_additively(b in 2u64..50, e1 in 0u32..20, e2 in 0u32..20) {
        let b = Nat::from(b);
        prop_assert_eq!(b.pow(e1) * b.pow(e2), b.pow(e1 + e2));
    }

    #[test]
    fn factor_out_recomposes(base in 2u64..100, k in 0u32..30, cof in 1u64..1000) {
        let base = Nat::from(base);
        // Make the cofactor coprime to base by stripping base's factors.
        let (_, cof) = Nat::from(cof).factor_out(&base);
        let n = base.pow(k) * &cof;
        let (k2, cof2) = n.factor_out(&base);
        prop_assert_eq!(k2, k);
        prop_assert_eq!(cof2, cof);
    }

    #[test]
    fn mod_pow_matches_naive(b in 0u64..1000, e in 0u32..64, m in 1u64..1000) {
        let expected = {
            let mut acc: u128 = 1;
            for _ in 0..e {
                acc = acc * (b as u128) % (m as u128);
            }
            acc % m as u128
        };
        let got = Nat::from(b).mod_pow(&Nat::from(u64::from(e)), &Nat::from(m));
        prop_assert_eq!(got, nat(expected));
    }

    #[test]
    fn gcd_divides_both(a in 1u128.., b in 1u128..) {
        let g = nat(a).gcd(&nat(b));
        prop_assert!(nat(a).is_multiple_of(&g));
        prop_assert!(nat(b).is_multiple_of(&g));
    }

    #[test]
    fn primality_matches_trial_division(n in 0u64..20_000) {
        let trial = n >= 2 && (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0);
        prop_assert_eq!(tvg_bigint::is_prime_u64(n), trial);
    }
}
