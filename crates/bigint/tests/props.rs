//! Property-based tests for `Nat` arithmetic, cross-checked against `u128`
//! and against algebraic laws that hold beyond machine range.
//!
//! Runs on `tvg-testkit`'s deterministic harness: fixed seeds derived
//! from each property's name, fixed case counts, identical output on
//! every run.

use rand::Rng;
use tvg_bigint::Nat;
use tvg_testkit::gen::u128_any;

fn nat(v: u128) -> Nat {
    Nat::from(v)
}

#[test]
fn add_matches_u128() {
    tvg_testkit::check("add_matches_u128", |rng, _| {
        let (a, b) = (rng.gen::<u64>(), rng.gen::<u64>());
        assert_eq!(nat(a as u128) + nat(b as u128), nat(a as u128 + b as u128));
    });
}

#[test]
fn mul_matches_u128() {
    tvg_testkit::check("mul_matches_u128", |rng, _| {
        let (a, b) = (rng.gen::<u64>(), rng.gen::<u64>());
        assert_eq!(nat(a as u128) * nat(b as u128), nat(a as u128 * b as u128));
    });
}

#[test]
fn sub_matches_u128() {
    tvg_testkit::check("sub_matches_u128", |rng, _| {
        let (a, b) = (u128_any(rng), u128_any(rng));
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        assert_eq!(nat(hi) - nat(lo), nat(hi - lo));
        if hi != lo {
            assert_eq!(nat(lo).checked_sub(&nat(hi)), None);
        }
    });
}

#[test]
fn div_rem_matches_u128() {
    tvg_testkit::check("div_rem_matches_u128", |rng, _| {
        let a = u128_any(rng);
        let b = u128_any(rng).max(1);
        let (q, r) = nat(a).div_rem(&nat(b));
        assert_eq!(q, nat(a / b));
        assert_eq!(r, nat(a % b));
    });
}

#[test]
fn add_commutes_beyond_machine_range() {
    tvg_testkit::check("add_commutes_beyond_machine_range", |rng, _| {
        let x = nat(u128_any(rng)).shl_bits(rng.gen_range(0..200));
        let y = nat(u128_any(rng));
        assert_eq!(&x + &y, &y + &x);
    });
}

#[test]
fn mul_distributes_over_add() {
    tvg_testkit::check("mul_distributes_over_add", |rng, _| {
        let a = nat(rng.gen::<u64>() as u128).shl_bits(rng.gen_range(0..100));
        let b = nat(rng.gen::<u64>() as u128);
        let c = nat(rng.gen::<u64>() as u128);
        assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    });
}

#[test]
fn div_rem_is_inverse_of_mul_add() {
    tvg_testkit::check("div_rem_is_inverse_of_mul_add", |rng, _| {
        let a = nat(u128_any(rng)).shl_bits(rng.gen_range(0..150));
        let d = nat(u128_any(rng).max(1));
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(q * d + r, a);
    });
}

#[test]
fn decimal_roundtrip() {
    tvg_testkit::check("decimal_roundtrip", |rng, _| {
        let n = nat(u128_any(rng)).shl_bits(rng.gen_range(0..150));
        let parsed: Nat = n.to_string().parse().expect("display output must parse");
        assert_eq!(parsed, n);
    });
}

#[test]
fn ordering_is_total_and_consistent() {
    tvg_testkit::check("ordering_is_total_and_consistent", |rng, _| {
        let (a, b) = (u128_any(rng), u128_any(rng));
        assert_eq!(nat(a).cmp(&nat(b)), a.cmp(&b));
    });
}

#[test]
fn shifts_invert() {
    tvg_testkit::check("shifts_invert", |rng, _| {
        let n = nat(u128_any(rng));
        let s = rng.gen_range(0..300);
        assert_eq!(n.shl_bits(s).shr_bits(s), n);
    });
}

#[test]
fn pow_splits_additively() {
    tvg_testkit::check("pow_splits_additively", |rng, _| {
        let b = Nat::from(rng.gen_range(2u64..50));
        let (e1, e2) = (rng.gen_range(0u32..20), rng.gen_range(0u32..20));
        assert_eq!(b.pow(e1) * b.pow(e2), b.pow(e1 + e2));
    });
}

#[test]
fn factor_out_recomposes() {
    tvg_testkit::check("factor_out_recomposes", |rng, _| {
        let base = Nat::from(rng.gen_range(2u64..100));
        let k = rng.gen_range(0u32..30);
        // Make the cofactor coprime to base by stripping base's factors.
        let (_, cof) = Nat::from(rng.gen_range(1u64..1000)).factor_out(&base);
        let n = base.pow(k) * &cof;
        let (k2, cof2) = n.factor_out(&base);
        assert_eq!(k2, k);
        assert_eq!(cof2, cof);
    });
}

#[test]
fn mod_pow_matches_naive() {
    tvg_testkit::check("mod_pow_matches_naive", |rng, _| {
        let b = rng.gen_range(0u64..1000);
        let e = rng.gen_range(0u32..64);
        let m = rng.gen_range(1u64..1000);
        let expected = {
            let mut acc: u128 = 1;
            for _ in 0..e {
                acc = acc * (b as u128) % (m as u128);
            }
            acc % m as u128
        };
        let got = Nat::from(b).mod_pow(&Nat::from(u64::from(e)), &Nat::from(m));
        assert_eq!(got, nat(expected));
    });
}

#[test]
fn gcd_divides_both() {
    tvg_testkit::check("gcd_divides_both", |rng, _| {
        let (a, b) = (u128_any(rng).max(1), u128_any(rng).max(1));
        let g = nat(a).gcd(&nat(b));
        assert!(nat(a).is_multiple_of(&g));
        assert!(nat(b).is_multiple_of(&g));
    });
}

#[test]
fn primality_matches_trial_division() {
    tvg_testkit::check("primality_matches_trial_division", |rng, _| {
        let n = rng.gen_range(0u64..20_000);
        let trial = n >= 2 && (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0);
        assert_eq!(tvg_bigint::is_prime_u64(n), trial);
    });
}
