//! `tvg-cli` — run declarative TVG scenarios and verify their goldens.
//!
//! See [`tvg_cli::USAGE`] or run without arguments for the command list.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tvg_cli::run_command(&args) {
        Ok(output) => {
            print!("{}", output.stdout);
            eprint!("{}", output.stderr);
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
