//! The library behind the `tvg-cli` binary: spec-file handling, report
//! emission, and golden verification, kept out of `main.rs` so the
//! integration tests drive exactly the code the binary runs.
//!
//! Commands (see [`run_command`]):
//!
//! * `run <spec>... [--index <file.tvgi>]` — execute every scenario in
//!   the files, print one canonical JSON report per line to stdout
//!   (wall times go to stderr: they are real but not canonical). With
//!   `--index`, batch plans are answered from a compiled `.tvgi` index
//!   file (see `compile`) instead of regenerating and recompiling —
//!   same canonical bytes, no compile cost.
//! * `check <spec>...` — parse and fully validate, run nothing.
//! * `compile <spec> -o <file.tvgi> [--shards <k>] [--scenario <name>]`
//!   — compile one scenario's index and serialize it as a sharded
//!   on-disk `.tvgi` file for `run --index`.
//! * `profile <spec>...` — run every scenario and print one JSON line of
//!   engine throughput each (queries/sec, settles/sec, time/query) —
//!   the profiling-first gate's human- and CI-artifact-facing face.
//! * `verify <dir>` — run every `*.tvgs` spec under `<dir>` and
//!   byte-compare the output with the checked-in golden
//!   `<dir>/golden/<stem>.json`; any difference is a failure. This is
//!   the CI golden gate (run at `TVG_BATCH_THREADS=1` and `=4`).
//! * `bless <dir>` — regenerate the goldens `verify` compares against.
//!
//! Every failure is reported with its file; the process-level exit code
//! is nonzero iff anything failed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tvg_scenarios::{parse_specs, Scenario};

/// A CLI failure: what went wrong, tied to the file it happened in.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// No command or an unknown command was given.
    Usage(String),
    /// A spec argument that is a directory, not a spec file (`run`,
    /// `check`, `profile`, and `compile` take files; `verify` and
    /// `bless` are the directory-shaped commands).
    IsDirectory {
        /// The directory that was passed where a file was needed.
        path: PathBuf,
    },
    /// A `.tvgi` index file could not be compiled, opened, or run
    /// (format corruption, workload mismatch, unsupported plan).
    Index {
        /// The index file involved.
        path: PathBuf,
        /// The typed index error, stringified for display.
        error: String,
    },
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error, stringified.
        error: String,
    },
    /// A spec failed to parse/validate.
    BadSpec {
        /// The spec file.
        path: PathBuf,
        /// The typed parse error, stringified for display.
        error: String,
    },
    /// One or more golden comparisons failed (`verify` checks every
    /// spec before failing, so all drifted goldens are listed at once).
    GoldenMismatch {
        /// Every spec whose report diverged, paired with the first line
        /// at which report and golden differ (1-based).
        mismatches: Vec<(PathBuf, usize)>,
        /// Golden files with no matching `*.tvgs` spec — stale leftovers
        /// from a renamed or deleted spec. They are drift too: a gate
        /// that silently carries dead goldens can green-light a rename
        /// that quietly dropped coverage.
        orphans: Vec<PathBuf>,
    },
    /// `verify` found no spec files at all (an empty gate must fail
    /// loudly, not pass vacuously).
    NoSpecs {
        /// The directory searched.
        dir: PathBuf,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::IsDirectory { path } => write!(
                f,
                "{}: is a directory, not a spec file (pass a *.tvgs file; \
                 `verify` and `bless` take directories)",
                path.display()
            ),
            CliError::Index { path, error } => write!(f, "{}: {error}", path.display()),
            CliError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            CliError::BadSpec { path, error } => write!(f, "{}: {error}", path.display()),
            CliError::GoldenMismatch {
                mismatches,
                orphans,
            } => {
                for (path, line) in mismatches {
                    writeln!(
                        f,
                        "{}: report differs from golden at line {line}",
                        path.display()
                    )?;
                }
                for path in orphans {
                    writeln!(f, "{}: orphaned golden (no matching spec)", path.display())?;
                }
                write!(f, "run `tvg-cli bless` to accept intended drift")
            }
            CliError::NoSpecs { dir } => {
                write!(f, "{}: no *.tvgs specs found", dir.display())
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The usage string printed on argument errors.
pub const USAGE: &str = "usage: tvg-cli <command> [args]
  run <spec>... [--index <file.tvgi>]
                    run scenarios, print canonical JSON reports to stdout;
                    with --index, answer batch plans from a compiled
                    index file instead of regenerating and recompiling
  check <spec>...   parse and validate specs without running them
  compile <spec> -o <file.tvgi> [--shards <k>] [--scenario <name>]
                    compile a scenario's index once and serialize it as
                    a sharded on-disk .tvgi index file
  profile <spec>... run scenarios and print engine throughput (queries/sec,
                    settles/sec, time/query) as one JSON line per scenario
  verify <dir>      run every <dir>/*.tvgs and diff against <dir>/golden/
  bless <dir>       regenerate <dir>/golden/ from the current reports";

/// Output of a successful command: what to print to stdout and stderr.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Output {
    /// Canonical output (reports, verification summary).
    pub stdout: String,
    /// Human commentary (wall times, per-file progress).
    pub stderr: String,
}

/// Parses and runs one CLI invocation (`args` excludes the binary name).
///
/// # Errors
///
/// Returns the first [`CliError`] encountered; the caller maps any error
/// to a nonzero exit code.
pub fn run_command(args: &[String]) -> Result<Output, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("missing command".to_string()))?;
    match command.as_str() {
        "run" => {
            let (index, specs) = take_index_flag(rest)?;
            if specs.is_empty() {
                return Err(CliError::Usage("run: need at least one spec file".into()));
            }
            let mut out = Output::default();
            for path in specs.iter().map(|s| Path::new(s.as_str())) {
                let scenarios = load_specs(path)?;
                for scenario in &scenarios {
                    let report = match &index {
                        Some(index_path) => tvg_scenarios::run_with_index(scenario, index_path)
                            .map_err(|e| CliError::Index {
                                path: index_path.clone(),
                                error: e.to_string(),
                            })?,
                        None => scenario.run(),
                    };
                    writeln!(out.stdout, "{}", report.canonical_json()).expect("string write");
                    writeln!(
                        out.stderr,
                        "ran {} ({}) in {} µs",
                        scenario.name(),
                        path.display(),
                        report.wall_micros()
                    )
                    .expect("string write");
                    let timing = report.timing();
                    if timing != &tvg_scenarios::Json::Null {
                        writeln!(out.stderr, "timing {} {timing}", scenario.name())
                            .expect("string write");
                    }
                }
            }
            Ok(out)
        }
        "check" => {
            if rest.is_empty() {
                return Err(CliError::Usage("check: need at least one spec file".into()));
            }
            let mut out = Output::default();
            for path in rest.iter().map(Path::new) {
                let scenarios = load_specs(path)?;
                writeln!(
                    out.stdout,
                    "ok {} ({} scenario{})",
                    path.display(),
                    scenarios.len(),
                    if scenarios.len() == 1 { "" } else { "s" }
                )
                .expect("string write");
            }
            Ok(out)
        }
        "compile" => {
            let mut spec_path: Option<PathBuf> = None;
            let mut out_path: Option<PathBuf> = None;
            let mut shards: u32 = 1;
            let mut pick: Option<String> = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "-o" | "--out" => {
                        out_path = Some(PathBuf::from(it.next().ok_or_else(|| {
                            CliError::Usage("compile: -o needs an output path".into())
                        })?));
                    }
                    "--shards" => {
                        shards = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .filter(|&k| k > 0)
                            .ok_or_else(|| {
                                CliError::Usage("compile: --shards needs a positive integer".into())
                            })?;
                    }
                    "--scenario" => {
                        pick = Some(
                            it.next()
                                .ok_or_else(|| {
                                    CliError::Usage("compile: --scenario needs a name".into())
                                })?
                                .clone(),
                        );
                    }
                    other if spec_path.is_none() && !other.starts_with('-') => {
                        spec_path = Some(PathBuf::from(other));
                    }
                    other => {
                        return Err(CliError::Usage(format!(
                            "compile: unexpected argument {other:?}"
                        )))
                    }
                }
            }
            let spec_path =
                spec_path.ok_or_else(|| CliError::Usage("compile: need a spec file".into()))?;
            let out_path =
                out_path.ok_or_else(|| CliError::Usage("compile: need -o <file.tvgi>".into()))?;
            let scenarios = load_specs(&spec_path)?;
            let scenario = match &pick {
                Some(name) => scenarios.iter().find(|s| s.name() == name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "compile: no scenario named {name:?} in {}",
                        spec_path.display()
                    ))
                })?,
                None => match scenarios.as_slice() {
                    [one] => one,
                    many => {
                        return Err(CliError::Usage(format!(
                            "compile: {} holds {} scenarios; pick one with --scenario <name>",
                            spec_path.display(),
                            many.len()
                        )))
                    }
                },
            };
            let summary =
                tvg_scenarios::compile_index(scenario, shards, &out_path).map_err(|e| {
                    CliError::Index {
                        path: out_path.clone(),
                        error: e.to_string(),
                    }
                })?;
            let mut out = Output::default();
            writeln!(
                out.stdout,
                "compiled {} -> {} ({} bytes, {} shards, width {}, {} nodes, {} edges, \
                 {} spans, {} events)",
                scenario.name(),
                out_path.display(),
                summary.bytes,
                summary.shards,
                summary.width,
                summary.num_nodes,
                summary.num_edges,
                summary.num_spans,
                summary.num_events,
            )
            .expect("string write");
            Ok(out)
        }
        "profile" => {
            if rest.is_empty() {
                return Err(CliError::Usage(
                    "profile: need at least one spec file".into(),
                ));
            }
            let mut out = Output::default();
            for path in rest.iter().map(Path::new) {
                let scenarios = load_specs(path)?;
                for scenario in &scenarios {
                    writeln!(out.stdout, "{}", profile_line(scenario)).expect("string write");
                }
            }
            Ok(out)
        }
        "verify" => {
            let dir = single_dir(rest, "verify")?;
            let mut out = Output::default();
            let mut mismatches = Vec::new();
            for (spec_path, golden_path) in spec_files(&dir)? {
                let report = render_reports(&spec_path)?;
                // A missing golden is drift (the spec was never
                // blessed), folded into the same mismatch list so one
                // verify run reports every failing spec; any other read
                // failure is a real I/O problem and surfaces as such.
                let golden = match std::fs::read_to_string(&golden_path) {
                    Ok(text) => text,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                    Err(e) => {
                        return Err(CliError::Io {
                            path: golden_path.clone(),
                            error: e.to_string(),
                        })
                    }
                };
                if report != golden {
                    let line = tvg_scenarios::first_divergent_line(&report, &golden);
                    mismatches.push((spec_path, line));
                    continue;
                }
                writeln!(out.stdout, "verified {}", spec_path.display()).expect("string write");
            }
            let orphans = orphaned_goldens(&dir)?;
            if mismatches.is_empty() && orphans.is_empty() {
                Ok(out)
            } else {
                Err(CliError::GoldenMismatch {
                    mismatches,
                    orphans,
                })
            }
        }
        "bless" => {
            let dir = single_dir(rest, "bless")?;
            let golden_dir = dir.join("golden");
            std::fs::create_dir_all(&golden_dir).map_err(|e| CliError::Io {
                path: golden_dir.clone(),
                error: e.to_string(),
            })?;
            let mut out = Output::default();
            for (spec_path, golden_path) in spec_files(&dir)? {
                let report = render_reports(&spec_path)?;
                std::fs::write(&golden_path, &report).map_err(|e| CliError::Io {
                    path: golden_path.clone(),
                    error: e.to_string(),
                })?;
                writeln!(out.stdout, "blessed {}", golden_path.display()).expect("string write");
            }
            // Blessing accepts *all* intended drift, including goldens
            // whose spec was renamed or deleted since the last bless.
            for orphan in orphaned_goldens(&dir)? {
                std::fs::remove_file(&orphan).map_err(|e| CliError::Io {
                    path: orphan.clone(),
                    error: e.to_string(),
                })?;
                writeln!(out.stdout, "removed {}", orphan.display()).expect("string write");
            }
            Ok(out)
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Runs one scenario and renders its engine throughput as a single JSON
/// line: the run/settle/expansion counters from the report's
/// [`tvg_journeys::EngineStats`], the wall time, and the derived rates
/// the profiling workflow watches (queries/sec, settles/sec, ns/query).
/// A serve scenario additionally reports its publication metrics —
/// epoch count, mean events per epoch, frozen chunks shared with the
/// final snapshot, chunk copies forced by snapshot isolation, and the
/// epochs/sec publication rate.
///
/// Counters (including the publication chunk/event counters) are
/// deterministic (golden-pinned); the wall time and rates are real
/// measurements and vary run to run — `profile` output is for humans
/// and CI artifacts, never for golden comparison.
#[must_use]
pub fn profile_line(scenario: &Scenario) -> String {
    let report = scenario.run();
    let stats = report.engine_stats();
    let wall_us = report.wall_micros().max(1);
    let per_sec = |count: u64| (u128::from(count) * 1_000_000) / wall_us;
    let mut line = format!(
        "{{\"scenario\": \"{}\", \"runs\": {}, \"settled\": {}, \"expanded\": {}, \
         \"wall_us\": {wall_us}, \"queries_per_sec\": {}, \"settles_per_sec\": {}, \
         \"ns_per_query\": {}",
        scenario.name(),
        stats.runs,
        stats.settled,
        stats.expanded,
        per_sec(stats.runs),
        per_sec(stats.settled),
        ns_per_query(wall_us, stats.runs),
    );
    if let Some(publication) = publication_profile(report.timing()) {
        line.push_str(&publication);
    }
    line.push('}');
    line
}

/// Wall time per engine run at nanosecond resolution. Batch specs
/// routinely answer a query in well under a microsecond, so a µs-domain
/// division truncates them all to an impossibly fast `0`; scaling to
/// nanoseconds first keeps the quotient meaningful.
fn ns_per_query(wall_us: u128, runs: u64) -> u128 {
    wall_us.saturating_mul(1_000) / u128::from(runs.max(1))
}

/// The serve plan's publication metrics as extra profile-line fields
/// (`None` for plans without a publication timing section).
fn publication_profile(timing: &tvg_scenarios::Json) -> Option<String> {
    use tvg_scenarios::Json;
    let Json::Obj(map) = timing else { return None };
    let ints = |key: &str| -> Option<Vec<u64>> {
        let Some(Json::Arr(items)) = map.get(key) else {
            return None;
        };
        items
            .iter()
            .map(|v| match v {
                Json::Int(n) => Some(*n),
                _ => None,
            })
            .collect()
    };
    let events = ints("events_per_epoch")?;
    let frozen = ints("chunks_frozen")?;
    let copied = ints("chunks_copied")?;
    let epochs_per_sec = match map.get("epochs_per_sec") {
        Some(Json::Num(r)) => *r,
        _ => 0.0,
    };
    let epochs = events.len() as u64;
    // Epoch 0 precedes any ingest, so the mean is over the ticks.
    let mean_events = events.iter().sum::<u64>() / epochs.saturating_sub(1).max(1);
    Some(format!(
        ", \"epochs\": {epochs}, \"events_per_epoch\": {mean_events}, \
         \"chunks_frozen\": {}, \"chunks_copied\": {}, \"epochs_per_sec\": {epochs_per_sec}",
        frozen.last().copied().unwrap_or(0),
        copied.iter().sum::<u64>(),
    ))
}

/// The `*.json` files under `<dir>/golden/` that no `<dir>/*.tvgs` spec
/// would produce, sorted by name. A missing golden directory is simply
/// empty (nothing was ever blessed).
fn orphaned_goldens(dir: &Path) -> Result<Vec<PathBuf>, CliError> {
    let expected: std::collections::BTreeSet<PathBuf> = spec_files(dir)?
        .into_iter()
        .map(|(_, golden)| golden)
        .collect();
    let golden_dir = dir.join("golden");
    let entries = match std::fs::read_dir(&golden_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(CliError::Io {
                path: golden_dir,
                error: e.to_string(),
            })
        }
    };
    let mut orphans: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .filter(|p| !expected.contains(p))
        .collect();
    orphans.sort();
    Ok(orphans)
}

fn single_dir(rest: &[String], command: &str) -> Result<PathBuf, CliError> {
    match rest {
        [dir] => Ok(PathBuf::from(dir)),
        _ => Err(CliError::Usage(format!(
            "{command}: need exactly one directory"
        ))),
    }
}

/// The workspace's bundled `scenarios/` directory, resolved relative to
/// this crate so every gate that consumes the bundle (the CLI tests,
/// the dump binaries, the root user stories) agrees on one location.
#[must_use]
pub fn bundled_scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Splits `rest` into an optional `--index <path>` flag and the
/// remaining (spec-file) arguments, in order.
fn take_index_flag(rest: &[String]) -> Result<(Option<PathBuf>, Vec<String>), CliError> {
    let mut index = None;
    let mut specs = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--index" {
            index = Some(PathBuf::from(it.next().ok_or_else(|| {
                CliError::Usage("run: --index needs a .tvgi path".into())
            })?));
        } else {
            specs.push(arg.clone());
        }
    }
    Ok((index, specs))
}

/// Loads and fully validates a spec file. A directory is a typed
/// [`CliError::IsDirectory`] up front — `read_to_string` on a
/// directory would otherwise surface as an opaque I/O error.
pub fn load_specs(path: &Path) -> Result<Vec<Scenario>, CliError> {
    if path.is_dir() {
        return Err(CliError::IsDirectory {
            path: path.to_path_buf(),
        });
    }
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.to_path_buf(),
        error: e.to_string(),
    })?;
    parse_specs(&text).map_err(|e| CliError::BadSpec {
        path: path.to_path_buf(),
        error: e.to_string(),
    })
}

/// Runs every scenario in a spec file and concatenates the canonical
/// report lines — the exact bytes `verify` diffs and `bless` writes.
pub fn render_reports(path: &Path) -> Result<String, CliError> {
    let mut out = String::new();
    for scenario in load_specs(path)? {
        out.push_str(&scenario.run().canonical_json());
        out.push('\n');
    }
    Ok(out)
}

/// The `(spec, golden)` path pairs of a scenario directory, sorted by
/// file name so runs are order-deterministic.
pub fn spec_files(dir: &Path) -> Result<Vec<(PathBuf, PathBuf)>, CliError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CliError::Io {
        path: dir.to_path_buf(),
        error: e.to_string(),
    })?;
    let mut specs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "tvgs"))
        .collect();
    specs.sort();
    if specs.is_empty() {
        return Err(CliError::NoSpecs {
            dir: dir.to_path_buf(),
        });
    }
    Ok(specs
        .into_iter()
        .map(|spec| {
            let stem = spec.file_stem().expect("tvgs files have stems");
            let golden = dir
                .join("golden")
                .join(format!("{}.json", stem.to_string_lossy()));
            (spec, golden)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::ns_per_query;

    /// The bug this replaced: `wall_us / runs` truncated every
    /// sub-microsecond query to 0 — a 1 µs wall over 8 runs profiled as
    /// infinitely fast. The ns-domain quotient stays meaningful.
    #[test]
    fn sub_microsecond_queries_profile_as_nonzero() {
        assert_eq!(ns_per_query(1, 8), 125);
        assert_eq!(ns_per_query(1000, 3), 333_333);
        assert_eq!(ns_per_query(5, 1), 5_000);
        // Zero runs must not divide by zero.
        assert_eq!(ns_per_query(7, 0), 7_000);
        // And the µs→ns scaling saturates rather than overflowing.
        assert_eq!(ns_per_query(u128::MAX, 1), u128::MAX);
    }
}
