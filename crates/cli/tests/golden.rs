//! The golden gate, in-tree: every bundled spec under `scenarios/` must
//! reproduce its checked-in golden report byte for byte — through the
//! same code path the `tvg-cli verify` CI job runs. A report drift
//! without a blessed golden fails `cargo test` before it ever reaches
//! CI.

use tvg_cli::{
    bundled_scenarios_dir as scenarios_dir, render_reports, run_command, spec_files, CliError,
};
use tvg_scenarios::Threads;

#[test]
fn bundled_specs_reproduce_their_goldens() {
    let dir = scenarios_dir();
    let pairs = spec_files(&dir).expect("bundled specs exist");
    assert_eq!(pairs.len(), 12, "twelve bundled spec files ship in-tree");
    for (spec, golden) in pairs {
        let report = render_reports(&spec).expect("spec runs");
        let golden_text = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!("{}: {e} (run `tvg-cli bless scenarios`)", golden.display())
        });
        assert_eq!(
            report,
            golden_text,
            "{}: report drifted from golden (re-bless if intended)",
            spec.display()
        );
    }
}

#[test]
fn bundled_specs_are_thread_invariant() {
    // The golden bytes must be reachable from any thread count — this is
    // what lets CI verify at TVG_BATCH_THREADS=1 and =4 against ONE
    // golden. Pin it explicitly per scenario, independent of env.
    let dir = scenarios_dir();
    for (spec, _) in spec_files(&dir).expect("bundled specs exist") {
        for scenario in tvg_cli::load_specs(&spec).expect("spec parses") {
            let one = scenario.with_threads(Threads::Fixed(1)).run();
            let four = scenario.with_threads(Threads::Fixed(4)).run();
            assert_eq!(
                one.canonical_json()
                    .replace("\"threads\":\"1\"", "\"threads\":\"4\""),
                four.canonical_json(),
                "{}: results changed with thread count",
                scenario.name()
            );
        }
    }
}

#[test]
fn verify_command_passes_on_the_bundled_tree() {
    let dir = scenarios_dir();
    let out = run_command(&["verify".to_string(), dir.display().to_string()])
        .expect("bundled goldens verify");
    assert_eq!(out.stdout.lines().count(), 12);
    assert!(out.stdout.lines().all(|l| l.starts_with("verified ")));
}

#[test]
fn verify_detects_a_single_byte_of_drift() {
    // Copy the tree into a temp dir, flip one byte of one golden,
    // delete another entirely, and plant a golden with no spec: the
    // gate must fail with one error that names ALL THREE (verify checks
    // everything before failing; a missing golden counts as drift, and
    // so does an orphaned one).
    let dir = scenarios_dir();
    let tmp = std::env::temp_dir().join(format!("tvg-cli-golden-drift-{}", std::process::id()));
    let golden_tmp = tmp.join("golden");
    std::fs::create_dir_all(&golden_tmp).expect("temp dir");
    for (spec, golden) in spec_files(&dir).expect("bundled specs exist") {
        std::fs::copy(&spec, tmp.join(spec.file_name().expect("file name"))).expect("copy spec");
        std::fs::copy(
            &golden,
            golden_tmp.join(golden.file_name().expect("file name")),
        )
        .expect("copy golden");
    }
    let victim = golden_tmp.join("ring-matrix.json");
    let mut text = std::fs::read_to_string(&victim).expect("golden exists");
    text = text.replace("\"ratio\":0.5", "\"ratio\":0.75");
    std::fs::write(&victim, text).expect("write tampered golden");
    std::fs::remove_file(golden_tmp.join("star-ferry-single.json")).expect("remove golden");
    std::fs::write(golden_tmp.join("ghost-spec.json"), "{}\n").expect("plant orphaned golden");
    let err = run_command(&["verify".to_string(), tmp.display().to_string()])
        .expect_err("tampered golden must fail");
    match err {
        CliError::GoldenMismatch {
            mismatches,
            orphans,
        } => {
            let names: Vec<_> = mismatches
                .iter()
                .map(|(p, _)| p.file_name().expect("spec file").to_string_lossy())
                .collect();
            assert_eq!(
                names,
                ["ring-matrix.tvgs", "star-ferry-single.tvgs"],
                "both failing specs reported in one pass"
            );
            let stray: Vec<_> = orphans
                .iter()
                .map(|p| p.file_name().expect("golden file").to_string_lossy())
                .collect();
            assert_eq!(stray, ["ghost-spec.json"], "the orphan is drift too");
        }
        other => panic!("expected GoldenMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn bless_removes_orphaned_goldens() {
    // `bless` accepts all intended drift, including goldens left behind
    // by a renamed or deleted spec — after a bless, verify must pass.
    let dir = scenarios_dir();
    let tmp = std::env::temp_dir().join(format!("tvg-cli-golden-orphan-{}", std::process::id()));
    let golden_tmp = tmp.join("golden");
    std::fs::create_dir_all(&golden_tmp).expect("temp dir");
    std::fs::copy(dir.join("ring-matrix.tvgs"), tmp.join("ring-matrix.tvgs")).expect("copy spec");
    std::fs::copy(
        dir.join("golden/ring-matrix.json"),
        golden_tmp.join("ring-matrix.json"),
    )
    .expect("copy golden");
    std::fs::write(golden_tmp.join("renamed-away.json"), "{}\n").expect("plant orphaned golden");
    let tmp_arg = tmp.display().to_string();
    let err = run_command(&["verify".to_string(), tmp_arg.clone()])
        .expect_err("orphan alone must fail verify");
    assert!(
        matches!(&err, CliError::GoldenMismatch { mismatches, orphans }
            if mismatches.is_empty() && orphans.len() == 1),
        "expected a pure-orphan mismatch, got {err:?}"
    );
    let blessed = run_command(&["bless".to_string(), tmp_arg.clone()]).expect("bless succeeds");
    assert!(
        blessed.stdout.contains("removed ") && blessed.stdout.contains("renamed-away.json"),
        "bless reports the removal: {}",
        blessed.stdout
    );
    run_command(&["verify".to_string(), tmp_arg]).expect("verify passes after bless");
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn usage_and_missing_files_are_typed_errors() {
    assert!(matches!(run_command(&[]), Err(CliError::Usage(_))));
    assert!(matches!(
        run_command(&["frobnicate".to_string()]),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        run_command(&["run".to_string()]),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        run_command(&["run".to_string(), "/no/such/spec.tvgs".to_string()]),
        Err(CliError::Io { .. })
    ));
    let empty = std::env::temp_dir().join(format!("tvg-cli-empty-{}", std::process::id()));
    std::fs::create_dir_all(&empty).expect("temp dir");
    assert!(matches!(
        run_command(&["verify".to_string(), empty.display().to_string()]),
        Err(CliError::NoSpecs { .. })
    ));
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn run_command_emits_one_canonical_line_per_scenario() {
    let dir = scenarios_dir();
    let spec = dir.join("ring-matrix.tvgs");
    let out = run_command(&["run".to_string(), spec.display().to_string()]).expect("runs");
    assert_eq!(out.stdout.lines().count(), 1);
    let golden =
        std::fs::read_to_string(dir.join("golden/ring-matrix.json")).expect("golden exists");
    assert_eq!(out.stdout, golden);
    assert!(out.stderr.contains("ran ring-matrix"));
}

#[test]
fn profile_command_reports_throughput_per_scenario() {
    let dir = scenarios_dir();
    let spec = dir.join("ring-matrix.tvgs");
    let out = run_command(&["profile".to_string(), spec.display().to_string()]).expect("profiles");
    assert_eq!(out.stdout.lines().count(), 1, "one JSON line per scenario");
    let line = out.stdout.lines().next().expect("one line");
    // Wall times (and thus the rates) vary run to run; the line's shape
    // and its deterministic counters must not.
    for field in [
        "\"scenario\": \"ring-matrix\"",
        "\"runs\": ",
        "\"settled\": ",
        "\"expanded\": ",
        "\"wall_us\": ",
        "\"queries_per_sec\": ",
        "\"settles_per_sec\": ",
        "\"ns_per_query\": ",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
    // The counters agree with what the golden report pinned.
    let golden =
        std::fs::read_to_string(dir.join("golden/ring-matrix.json")).expect("golden exists");
    for counter in ["runs", "settled", "expanded"] {
        let pinned = golden
            .split(&format!("\"{counter}\":"))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .expect("golden pins the counter");
        assert!(
            line.contains(&format!("\"{counter}\": {pinned}")),
            "{counter} drifted from the golden's {pinned}: {line}"
        );
    }
    assert!(
        run_command(&["profile".to_string()]).is_err(),
        "profile with no specs is a usage error"
    );
}
