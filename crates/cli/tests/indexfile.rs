//! CLI-level gates for the `.tvgi` compile-once workflow and the
//! directory-argument usability fix.

use std::path::PathBuf;
use tvg_cli::{bundled_scenarios_dir, run_command, CliError};

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

/// A scratch path unique to this test process and `label`.
fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tvg-cli-{}-{label}", std::process::id()))
}

#[test]
fn a_directory_where_a_spec_file_belongs_is_a_typed_error() {
    let dir = bundled_scenarios_dir().display().to_string();
    for command in ["run", "check", "profile"] {
        let err = run_command(&args(&[command, &dir])).expect_err("directories are not specs");
        assert!(
            matches!(err, CliError::IsDirectory { .. }),
            "{command}: expected IsDirectory, got {err:?}"
        );
        // The message tells the user where directories DO go.
        assert!(err.to_string().contains("is a directory"));
        assert!(err.to_string().contains("verify"));
    }
    let out = scratch("dir.tvgi").display().to_string();
    let err = run_command(&args(&["compile", &dir, "-o", &out]))
        .expect_err("compile rejects directories too");
    assert!(matches!(err, CliError::IsDirectory { .. }));
}

#[test]
fn compile_then_run_from_index_reproduces_the_direct_report() {
    let spec = bundled_scenarios_dir().join("ring-matrix.tvgs");
    let spec = spec.display().to_string();
    let index = scratch("ring.tvgi").display().to_string();

    let compiled = run_command(&args(&["compile", &spec, "-o", &index, "--shards", "2"]))
        .expect("bundled spec compiles");
    assert!(
        compiled.stdout.starts_with("compiled ring-matrix -> "),
        "unexpected compile output: {}",
        compiled.stdout
    );

    let direct = run_command(&args(&["run", &spec])).expect("direct run");
    let mapped = run_command(&args(&["run", &spec, "--index", &index])).expect("indexed run");
    assert_eq!(
        mapped.stdout, direct.stdout,
        "run --index must reproduce the canonical bytes of a direct run"
    );
    let _ = std::fs::remove_file(&index);
}

#[test]
fn an_index_compiled_for_another_workload_is_a_typed_error() {
    let ring = bundled_scenarios_dir().join("ring-matrix.tvgs");
    let grid = bundled_scenarios_dir().join("grid-nowait-matrix.tvgs");
    let index = scratch("grid.tvgi").display().to_string();
    run_command(&args(&[
        "compile",
        &grid.display().to_string(),
        "-o",
        &index,
    ]))
    .expect("grid spec compiles");
    let err = run_command(&args(&[
        "run",
        &ring.display().to_string(),
        "--index",
        &index,
    ]))
    .expect_err("workload mismatch must fail");
    assert!(
        matches!(err, CliError::Index { .. }),
        "expected Index error, got {err:?}"
    );
    assert!(err.to_string().contains("different workload"));
    let _ = std::fs::remove_file(&index);
}

#[test]
fn compile_on_a_multi_scenario_spec_needs_a_pick() {
    let sweep = bundled_scenarios_dir().join("ring-bus-sweep.tvgs");
    let sweep = sweep.display().to_string();
    let index = scratch("sweep.tvgi").display().to_string();
    let err = run_command(&args(&["compile", &sweep, "-o", &index]))
        .expect_err("ambiguous spec must fail");
    assert!(
        matches!(err, CliError::Usage(_)),
        "expected Usage, got {err:?}"
    );
    assert!(err.to_string().contains("--scenario"));

    let err = run_command(&args(&[
        "compile",
        &sweep,
        "-o",
        &index,
        "--scenario",
        "no-such-scenario",
    ]))
    .expect_err("unknown scenario name must fail");
    assert!(matches!(err, CliError::Usage(_)));
}

#[test]
fn compile_validates_its_flags() {
    let spec = bundled_scenarios_dir().join("ring-matrix.tvgs");
    let spec = spec.display().to_string();
    assert!(matches!(
        run_command(&args(&["compile", &spec])),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        run_command(&args(&["compile", &spec, "-o"])),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        run_command(&args(&["compile", &spec, "-o", "x.tvgi", "--shards", "0"])),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        run_command(&args(&["run", "--index"])),
        Err(CliError::Usage(_))
    ));
}
