//! Experiment harness: regenerates every table and figure of the
//! reproduction (see `EXPERIMENTS.md` at the workspace root).
//!
//! Each `eN_*` function computes one experiment and returns a [`Table`]
//! ready for printing; the `experiments` binary runs them all. Criterion
//! benches under `benches/` measure the same code paths for scaling
//! shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;

/// Renders an optional arrival instant for the canonical dump binaries
/// (`-` means unreachable). Shared so the two determinism-gate dumps
/// can never drift apart on the sentinel.
#[must_use]
pub fn fmt_arrival(a: Option<&u64>) -> String {
    a.map_or_else(|| "-".to_string(), u64::to_string)
}
