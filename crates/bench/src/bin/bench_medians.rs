//! The bench-regression gate: median wall times of the E7 (compiled
//! index), E9 (streaming ingest), E13 (snapshot publication), and E14
//! (on-disk `.tvgi` index) hot paths, emitted as machine-readable JSON
//! and compared against checked-in baselines.
//!
//! Unlike the criterion benches (scaling shapes, human-read), this
//! binary exists to *fail CI* when a hot path rots by an order of
//! magnitude. Medians over several repetitions make the numbers robust
//! to scheduler noise; the comparison tolerance is deliberately
//! generous (default 3× for same-machine checks; CI passes
//! `--tolerance 10.0` because its runners are a different machine class
//! than the one that emitted the baselines) and baselines below
//! [`NOISE_FLOOR_US`] are floored before the ratio is taken, so only
//! genuine regressions — not machine variance — trip the gate.
//! Speedups never fail: the gate is one-sided. Metrics named `*_per_sec`
//! are throughput rates — higher is better, so their check ratio is
//! inverted (the gate trips when the rate *falls* past tolerance).
//!
//! Usage:
//! * `bench_medians emit [dir]` — write `BENCH_E7.json`,
//!   `BENCH_E9.json`, `BENCH_E13.json`, and `BENCH_E14.json` under
//!   `dir` (default `.`), print them to stdout.
//! * `bench_medians check <baseline-dir> [--tolerance X]` — re-measure
//!   and fail (exit 1) if any metric exceeds `X ×` its baseline in
//!   `<baseline-dir>/BENCH_E7.json` / `BENCH_E9.json` /
//!   `BENCH_E13.json` / `BENCH_E14.json`.
//!
//! The workloads deliberately mirror `benches/temporal_index.rs` (E7),
//! `benches/stream_ingest.rs` (E9), `benches/snapshot_publish.rs`
//! (E13), and `benches/mmap_query.rs` (E14) at CI-friendly sizes; the
//! reference numbers live in `EXPERIMENTS.md`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;
use tvg_dynnet::json::{parse, Json};
use tvg_journeys::engine::{foremost_to, foremost_tree};
use tvg_journeys::{IncrementalForemost, SearchLimits, WaitingPolicy};
use tvg_model::generators::{random_periodic_tvg, scale_free_temporal, RandomPeriodicParams};
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::tvgi::{write_tvgi, ShardedIndex};
use tvg_model::{narrow_tvg, NodeId, Tvg, TvgIndex};

/// Metrics are compared against at least this many microseconds of
/// baseline: sub-millisecond medians (the 30 µs pair queries) are
/// dominated by scheduler and machine variance on shared CI runners,
/// and must not flake the gate red without a genuine order-of-magnitude
/// regression.
const NOISE_FLOOR_US: u64 = 200;

/// Median wall time of `reps` runs of `f`, in whole microseconds
/// (clamped up to 1 so ratios never divide by zero).
fn median_us<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_micros()
        })
        .collect();
    samples.sort_unstable();
    u64::try_from(samples[samples.len() / 2])
        .unwrap_or(u64::MAX)
        .max(1)
}

/// The E7 workload: the ≥10k-edge-event random periodic TVG of
/// `benches/temporal_index.rs`.
fn e7_workload() -> (Tvg<u64>, u64) {
    let params = RandomPeriodicParams {
        num_nodes: 64,
        num_edges: 256,
        period: 16,
        phase_density: 0.5,
        alphabet: tvg_langs::Alphabet::ab(),
    };
    let g = random_periodic_tvg(&mut StdRng::seed_from_u64(7), &params);
    (g, 512)
}

fn e7_metrics() -> BTreeMap<String, u64> {
    let (g, horizon) = e7_workload();
    let src = NodeId::from_index(0);
    let dst = NodeId::from_index(g.num_nodes() - 1);
    let mut m = BTreeMap::new();
    m.insert(
        "compile_us".to_string(),
        median_us(5, || TvgIndex::compile(&g, horizon).num_edge_events()),
    );
    // Queries run in the narrowed `u32` domain — the domain the scenario
    // runtime picks for this horizon (512 ≪ 2³²), so the gate watches
    // the path production traffic actually takes.
    let narrowed = narrow_tvg(&g, horizon).expect("horizon 512 fits u32");
    let h32 = u32::try_from(horizon).expect("fits u32");
    let limits = SearchLimits::new(h32, 24);
    let index = TvgIndex::compile(&narrowed, h32);
    m.insert(
        "pair_unbounded_us".to_string(),
        median_us(5, || {
            foremost_to(&index, src, dst, &0u32, &WaitingPolicy::Unbounded, &limits).is_some()
        }),
    );
    m.insert(
        "all_dest_unbounded_us".to_string(),
        median_us(5, || {
            foremost_tree(&index, src, &0u32, &WaitingPolicy::Unbounded, &limits).num_reached()
        }),
    );
    m.insert(
        "all_dest_bounded4_us".to_string(),
        median_us(3, || {
            foremost_tree(&index, src, &0u32, &WaitingPolicy::Bounded(4), &limits).num_reached()
        }),
    );
    // Throughput: settled configurations per second of the bounded-4
    // all-destinations run — a `_per_sec` metric, so the check gate
    // inverts the ratio (a *drop* in throughput is the regression).
    let settled = foremost_tree(&index, src, &0u32, &WaitingPolicy::Bounded(4), &limits)
        .stats()
        .settled;
    let bounded4_us = m["all_dest_bounded4_us"];
    m.insert(
        "settles_per_sec".to_string(),
        settled.saturating_mul(1_000_000) / bounded4_us.max(1),
    );
    m
}

/// The E9 workload: the n=200 scale-free feed of
/// `benches/stream_ingest.rs`, 64-event ingest ticks, `wait[3]`.
fn e9_workload() -> (TvgStream<u64>, Vec<StreamEvent<u64>>) {
    let g = scale_free_temporal(200, 64, 17);
    TvgStream::replay_of(&g, &64).expect("64 + 1 is representable")
}

fn e9_metrics() -> BTreeMap<String, u64> {
    const BATCH: usize = 64;
    let (base, events) = e9_workload();
    let limits = SearchLimits::new(64, 16);
    let src = NodeId::from_index(0);
    let incremental = || {
        let mut stream = base.clone();
        let mut inc = IncrementalForemost::new(
            stream.index(),
            &[(src, 0u64)],
            WaitingPolicy::Bounded(3),
            limits.clone(),
        );
        for batch in events.chunks(BATCH) {
            let report = stream.ingest(batch).expect("replay is valid");
            inc.refresh(stream.index(), &report);
        }
        inc.num_reached()
    };
    let recompile = || {
        let mut stream = base.clone();
        let mut reached = 0usize;
        for batch in events.chunks(BATCH) {
            stream.ingest(batch).expect("replay is valid");
            let g = stream.to_tvg();
            let index = TvgIndex::compile(&g, *stream.index().horizon());
            reached =
                foremost_tree(&index, src, &0, &WaitingPolicy::Bounded(3), &limits).num_reached();
        }
        reached
    };
    let mut m = BTreeMap::new();
    m.insert("incremental_us".to_string(), median_us(3, incremental));
    m.insert("recompile_us".to_string(), median_us(3, recompile));
    m
}

/// The E13 workload: the n=1000 scale-free live feed of
/// `benches/snapshot_publish.rs`, published as one retained snapshot
/// per 512-event ingest tick (retention forces the copy-on-write a
/// serve run's `EpochRing` would). Only the publication wall time is
/// measured — ingest is E9's job.
fn e13_metrics() -> BTreeMap<String, u64> {
    const BATCH: usize = 512;
    let g = scale_free_temporal(1000, 48, 13);
    let (base, events) = TvgStream::replay_of(&g, &48).expect("48 + 1 is representable");
    let epochs = events.chunks(BATCH).len() as u64 + 1;
    let rep = || {
        let mut stream = base.clone();
        let mut retained = Vec::with_capacity(usize::try_from(epochs).expect("small"));
        retained.push(stream.snapshot());
        let mut micros = 0u128;
        for batch in events.chunks(BATCH) {
            stream.ingest(batch).expect("replay is valid");
            let t = Instant::now();
            retained.push(stream.snapshot());
            micros += t.elapsed().as_micros();
        }
        std::hint::black_box(&retained);
        micros
    };
    let mut samples: Vec<u128> = (0..5).map(|_| rep()).collect();
    samples.sort_unstable();
    let publish_us = u64::try_from(samples[samples.len() / 2])
        .unwrap_or(u64::MAX)
        .max(1);
    let mut m = BTreeMap::new();
    m.insert("publish_us".to_string(), publish_us);
    // Throughput: published epochs per second — a `_per_sec` metric, so
    // the check gate inverts the ratio (a falling rate is the
    // regression).
    m.insert(
        "publish_per_sec".to_string(),
        epochs.saturating_mul(1_000_000) / publish_us,
    );
    m
}

/// The E14 workload: the n=20k scale-free graph of
/// `benches/mmap_query.rs`, compiled once, serialized to a scratch
/// `.tvgi` at 4 shards, and queried from both index forms. The gate
/// watches the whole compile-once lifecycle — compile, serialize,
/// reopen — plus the query medians whose ratio E14 reports: a
/// file-backed query must stay in the same order of magnitude as the
/// in-memory one, or the compile-once workflow has silently stopped
/// paying for itself.
fn e14_metrics() -> BTreeMap<String, u64> {
    const HORIZON: u64 = 64;
    let g = scale_free_temporal(20_000, HORIZON, 29);
    let path = std::env::temp_dir().join(format!("tvg-bench-e14-{}.tvgi", std::process::id()));
    let mut m = BTreeMap::new();
    m.insert(
        "compile_us".to_string(),
        median_us(3, || TvgIndex::compile(&g, HORIZON).num_edge_events()),
    );
    let index = TvgIndex::compile(&g, HORIZON);
    m.insert(
        "write_us".to_string(),
        median_us(3, || {
            write_tvgi(&index, 4, None, &path)
                .expect("scratch .tvgi writes")
                .bytes
        }),
    );
    m.insert(
        "open_us".to_string(),
        median_us(3, || {
            ShardedIndex::<u64>::open(&path)
                .expect("just-written file opens")
                .num_edge_events()
        }),
    );
    let mapped = ShardedIndex::<u64>::open(&path).expect("just-written file opens");
    let limits = SearchLimits::new(HORIZON, 32);
    let src = NodeId::from_index(0);
    let policy = WaitingPolicy::Bounded(3);
    // Racing two indexes is only meaningful if they agree.
    assert_eq!(
        foremost_tree(&index, src, &0u64, &policy, &limits).num_reached(),
        foremost_tree(&mapped, src, &0u64, &policy, &limits).num_reached(),
        "in-memory and file-backed indexes disagree"
    );
    m.insert(
        "query_compiled_us".to_string(),
        median_us(5, || {
            foremost_tree(&index, src, &0u64, &policy, &limits).num_reached()
        }),
    );
    m.insert(
        "query_mapped_us".to_string(),
        median_us(5, || {
            foremost_tree(&mapped, src, &0u64, &policy, &limits).num_reached()
        }),
    );
    let _ = std::fs::remove_file(&path);
    m
}

fn to_json(metrics: &BTreeMap<String, u64>) -> String {
    let obj: BTreeMap<String, Json> = metrics
        .iter()
        .map(|(k, v)| (k.clone(), Json::Int(*v)))
        .collect();
    format!("{}\n", Json::Obj(obj))
}

fn from_json(path: &Path) -> Result<BTreeMap<String, u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let Json::Obj(map) = parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))? else {
        return Err(format!("{}: expected a JSON object", path.display()));
    };
    map.into_iter()
        .map(|(k, v)| match v {
            Json::Int(n) => Ok((k, n)),
            other => Err(format!(
                "{}: metric {k:?} is not an integer ({other})",
                path.display()
            )),
        })
        .collect()
}

fn measure_all() -> Vec<(&'static str, BTreeMap<String, u64>)> {
    vec![
        ("BENCH_E7.json", e7_metrics()),
        ("BENCH_E9.json", e9_metrics()),
        ("BENCH_E13.json", e13_metrics()),
        ("BENCH_E14.json", e14_metrics()),
    ]
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => {
            let dir = PathBuf::from(args.get(1).map_or(".", String::as_str));
            for (file, metrics) in measure_all() {
                let text = to_json(&metrics);
                let path = dir.join(file);
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("error: {}: {e}", path.display());
                    return std::process::ExitCode::FAILURE;
                }
                print!("{file}: {text}");
            }
            std::process::ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(baseline_dir) = args.get(1).map(PathBuf::from) else {
                eprintln!("usage: bench_medians check <baseline-dir> [--tolerance X]");
                return std::process::ExitCode::FAILURE;
            };
            let tolerance: f64 = match args.get(2).map(String::as_str) {
                Some("--tolerance") => match args.get(3).and_then(|t| t.parse().ok()) {
                    Some(t) if t >= 1.0 => t,
                    _ => {
                        eprintln!("error: --tolerance needs a number >= 1.0");
                        return std::process::ExitCode::FAILURE;
                    }
                },
                None => 3.0,
                Some(other) => {
                    eprintln!("error: unknown flag {other:?}");
                    return std::process::ExitCode::FAILURE;
                }
            };
            let mut failed = false;
            for (file, current) in measure_all() {
                let baseline = match from_json(&baseline_dir.join(file)) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return std::process::ExitCode::FAILURE;
                    }
                };
                for metric in current.keys() {
                    if !baseline.contains_key(metric) {
                        eprintln!(
                            "FAIL {file} {metric}: no baseline (re-run `bench_medians emit` over the baseline dir)"
                        );
                        failed = true;
                    }
                }
                for (metric, &base) in &baseline {
                    let Some(&now) = current.get(metric) else {
                        eprintln!("FAIL {file} {metric}: metric vanished from the bench");
                        failed = true;
                        continue;
                    };
                    if metric.ends_with("_per_sec") {
                        // Throughput: higher is better, so the ratio is
                        // inverted — the gate trips when the rate falls
                        // below 1/tolerance of baseline.
                        let ratio = base as f64 / now.max(1) as f64;
                        let verdict = if ratio <= tolerance { "ok" } else { "FAIL" };
                        println!(
                            "{verdict} {file} {metric}: {now}/s vs baseline {base}/s ({ratio:.2}x slowdown, tolerance {tolerance:.1}x)"
                        );
                        failed |= ratio > tolerance;
                    } else {
                        let floor = base.max(NOISE_FLOOR_US);
                        let ratio = now as f64 / floor as f64;
                        let verdict = if ratio <= tolerance { "ok" } else { "FAIL" };
                        println!(
                            "{verdict} {file} {metric}: {now} µs vs baseline {base} µs (floored to {floor}; {ratio:.2}x, tolerance {tolerance:.1}x)"
                        );
                        failed |= ratio > tolerance;
                    }
                }
            }
            if failed {
                eprintln!("bench-regression gate FAILED (order-of-magnitude rot; re-baseline only if intended)");
                std::process::ExitCode::FAILURE
            } else {
                std::process::ExitCode::SUCCESS
            }
        }
        _ => {
            eprintln!("usage: bench_medians <emit [dir] | check <baseline-dir> [--tolerance X]>");
            std::process::ExitCode::FAILURE
        }
    }
}
