//! Regenerates every table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p tvg-bench --bin experiments [e1|e2|e3|e4|e5|e6|all]`

use tvg_bench::experiments as ex;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "e1" {
        println!("{}", ex::e1_membership());
        println!("{}", ex::e1_exhaustive(12));
    }
    if all || which == "e2" {
        println!("{}", ex::e2_computable_languages());
    }
    if all || which == "e3" {
        println!("{}", ex::e3_periodic_compilation());
        println!("{}", ex::e3_regular_embedding());
        println!("{}", ex::e3_residual_contrast());
        println!("{}", ex::e3_lstar_learning());
    }
    if all || which == "e4" {
        println!("{}", ex::e4_dilation());
        println!("{}", ex::e4_nonregular_survives());
    }
    if all || which == "e5" {
        println!("{}", ex::e5_broadcast(32, 120, 20));
        println!("{}", ex::e5_routing(12, 40));
    }
    if all || which == "e6" {
        println!("{}", ex::e6_prime_ablation());
        println!("{}", ex::e6_nfa_size_ablation());
        println!("{}", ex::e6_horizon_ablation());
        println!("{}", ex::e6_clock_trace());
    }
}
