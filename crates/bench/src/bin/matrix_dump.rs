//! Canonical reachability/delivery dump for the batch determinism gate,
//! driven by the bundled scenario specs.
//!
//! The workloads are no longer bespoke setup code: every batch-side
//! spec under `scenarios/` (discovered through the same
//! `tvg_cli::spec_files` walk the golden gates use, so a newly added
//! spec joins this gate automatically; streaming plans are covered by
//! `stream_dump`). The dump prints, in a fixed textual format, each
//! scenario's canonical report plus the *complete* underlying
//! matrices/broadcast rows across all three waiting policies — deeper
//! than the report itself, so the gate catches nondeterminism the
//! aggregated numbers could mask. The batch
//! thread count follows `TVG_BATCH_THREADS` (via `Batch::auto`), so CI
//! runs this binary at `=1` and `=4` and diffs the outputs byte for
//! byte — any parallel nondeterminism in the fan-out/merge path fails
//! the build.
//!
//! Usage: `TVG_BATCH_THREADS=4 cargo run --release -p tvg-bench --bin matrix_dump`

use tvg_bench::fmt_arrival;
use tvg_dynnet::broadcast::broadcast_plan;
use tvg_journeys::{Batch, ReachabilityMatrix, WaitingPolicy};
use tvg_model::TvgIndex;
use tvg_scenarios::{Plan, Scenario};

fn policies() -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(3),
        WaitingPolicy::Unbounded,
    ]
}

/// Full per-pair arrivals of the scenario's graph under every policy —
/// the same depth the pre-scenario dump had, now spec-driven.
fn dump_matrix(s: &Scenario) {
    let g = s.build_graph();
    let limits = s.limits();
    let start = match s.plan() {
        Plan::SingleSource { start, .. } | Plan::Matrix { start, .. } => *start,
        _ => 0,
    };
    let index = TvgIndex::compile(&g, limits.horizon);
    for policy in policies() {
        let m = ReachabilityMatrix::compute_on(&index, &start, &policy, &limits, Batch::auto());
        println!(
            "matrix {} policy={policy} runs={} ratio={:.12}",
            s.name(),
            m.stats().runs,
            m.reachability_ratio()
        );
        for src in g.nodes() {
            let row: Vec<String> = g
                .nodes()
                .map(|dst| fmt_arrival(m.arrival(src, dst)))
                .collect();
            println!("  {src}: {}", row.join(","));
        }
    }
}

/// Full per-source informed_at rows for broadcast scenarios, sweeping
/// every node as a source regardless of the plan's own source choice.
fn dump_broadcast(s: &Scenario, beacons: bool) {
    let g = s.build_graph();
    let limits = s.limits();
    let index = TvgIndex::compile(&g, limits.horizon);
    let sources: Vec<usize> = (0..g.num_nodes()).collect();
    for policy in policies() {
        let (outcomes, stats) =
            broadcast_plan(&index, &policy, beacons, &sources, &limits, Batch::auto());
        println!(
            "broadcast {} policy={policy} beacons={beacons} runs={}",
            s.name(),
            stats.runs
        );
        for (source, outcome) in outcomes.iter().enumerate() {
            let informed: Vec<String> = outcome
                .informed_at
                .iter()
                .map(|t| fmt_arrival(t.as_ref()))
                .collect();
            println!("  src={source}: {}", informed.join(","));
        }
    }
}

fn main() {
    // Stderr, not stdout: the dump itself must be canonical so CI can
    // `diff` two runs at different thread counts byte for byte.
    eprintln!("batch threads: {}", Batch::auto().num_threads());

    for (spec, _) in tvg_cli::spec_files(&tvg_cli::bundled_scenarios_dir()).expect("bundled specs")
    {
        for scenario in tvg_cli::load_specs(&spec).expect("bundled specs are valid") {
            match scenario.plan() {
                Plan::Matrix { .. } | Plan::SingleSource { .. } => {
                    println!("report {}", scenario.run().canonical_json());
                    dump_matrix(&scenario);
                }
                Plan::Broadcast { beacons, .. } => {
                    println!("report {}", scenario.run().canonical_json());
                    dump_broadcast(&scenario, *beacons);
                }
                // Streaming plans dump through `stream_dump`; serve
                // plans are gated by their own soak step (the report's
                // canonical section diffed across reader counts), and
                // matrix samples by the `.tvgi` round-trip oracle.
                Plan::MatrixSample { .. } | Plan::Streaming { .. } | Plan::Serve { .. } => {}
            }
        }
    }
}
