//! Canonical reachability/delivery dump for the batch determinism gate.
//!
//! Prints, in a fixed textual format, the complete output of every
//! batch-runtime consumer on deterministic workloads: reachability
//! matrices (arrivals and engine-run counts), delivery ratios, and
//! all-sources broadcast sweeps. The batch thread count follows
//! `TVG_BATCH_THREADS` (via `Batch::auto`), so CI runs this binary at
//! `=1` and `=4` and diffs the outputs byte for byte — any parallel
//! nondeterminism in the fan-out/merge path fails the build.
//!
//! Usage: `TVG_BATCH_THREADS=4 cargo run --release -p tvg-bench --bin matrix_dump`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tvg_dynnet::broadcast::{broadcast_sweep, ForwardingMode};
use tvg_dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
use tvg_dynnet::routing::delivery_ratio;
use tvg_journeys::{Batch, ReachabilityMatrix, SearchLimits, WaitingPolicy};
use tvg_model::generators::{ring_bus_tvg, scale_free_temporal};
use tvg_model::Tvg;

fn policies() -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(3),
        WaitingPolicy::Unbounded,
    ]
}

fn dump_matrix(name: &str, g: &Tvg<u64>, start: u64, limits: &SearchLimits<u64>) {
    for policy in policies() {
        let m = ReachabilityMatrix::compute(g, &start, &policy, limits);
        println!(
            "matrix {name} policy={policy} runs={} ratio={:.12}",
            m.stats().runs,
            m.reachability_ratio()
        );
        for src in g.nodes() {
            let row: Vec<String> = g
                .nodes()
                .map(|dst| match m.arrival(src, dst) {
                    Some(t) => t.to_string(),
                    None => "-".to_string(),
                })
                .collect();
            println!("  {src}: {}", row.join(","));
        }
    }
}

fn main() {
    // Stderr, not stdout: the dump itself must be canonical so CI can
    // `diff` two runs at different thread counts byte for byte.
    eprintln!("batch threads: {}", Batch::auto().num_threads());

    let sf = scale_free_temporal(60, 48, 17);
    dump_matrix("scale_free(60,48,17)", &sf, 0, &SearchLimits::new(48, 10));

    let ring = ring_bus_tvg(8, 8, 'r');
    dump_matrix("ring_bus(8,8)", &ring, 0, &SearchLimits::new(64, 16));

    let params = EdgeMarkovianParams {
        num_nodes: 14,
        p_birth: 0.06,
        p_death: 0.45,
        steps: 40,
    };
    for seed in 0..3u64 {
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
        for policy in policies() {
            println!(
                "delivery seed={seed} policy={policy} ratio={:.12}",
                delivery_ratio(&trace, 0, &policy)
            );
        }
        let sweep = broadcast_sweep(&trace, ForwardingMode::BoundedBuffer(2), true);
        for (source, outcome) in sweep.iter().enumerate() {
            let informed: Vec<String> = outcome
                .informed_at
                .iter()
                .map(|t| match t {
                    Some(t) => t.to_string(),
                    None => "-".to_string(),
                })
                .collect();
            println!("broadcast seed={seed} src={source}: {}", informed.join(","));
        }
    }
}
