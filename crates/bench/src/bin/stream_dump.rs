//! Canonical streaming-ingestion dump for the determinism gate.
//!
//! Replays deterministic workloads through the streaming path — trace
//! replay, batched ingest ticks, incremental foremost repair, and
//! batched queries against the live-index snapshot — and prints every
//! answer in a fixed textual format. The batch thread count follows
//! `TVG_BATCH_THREADS` (via `Batch::auto`), so CI runs this binary at
//! `=1` and `=4` and diffs the outputs byte for byte: any parallel
//! nondeterminism on the live-snapshot query path, and any divergence
//! of the incremental repair across runs, fails the build.
//!
//! Usage: `TVG_BATCH_THREADS=4 cargo run --release -p tvg-bench --bin stream_dump`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tvg_dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
use tvg_journeys::{Batch, BatchRunner, IncrementalForemost, SearchLimits, WaitingPolicy};
use tvg_model::generators::scale_free_temporal;
use tvg_model::stream::TvgStream;
use tvg_model::{NodeId, TemporalIndex};

fn policies() -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(3),
        WaitingPolicy::Unbounded,
    ]
}

fn fmt_arrival(a: Option<&u64>) -> String {
    a.map_or_else(|| "-".to_string(), u64::to_string)
}

/// Streams `g`'s schedule in `ticks` batches; after each tick, dumps
/// the repaired incremental tree per policy and one batched all-sources
/// query against the live snapshot (auto thread count).
fn dump_streamed(name: &str, g: &tvg_model::Tvg<u64>, horizon: u64, ticks: usize) {
    let (mut stream, events) = TvgStream::replay_of(g, &horizon);
    let limits = SearchLimits::new(horizon, 16);
    let src = NodeId::from_index(0);
    let mut incs: Vec<IncrementalForemost<u64>> = policies()
        .into_iter()
        .map(|p| IncrementalForemost::new(stream.index(), &[(src, 0u64)], p, limits.clone()))
        .collect();
    let chunk = events.len().div_ceil(ticks).max(1);
    for (tick, batch) in events.chunks(chunk).enumerate() {
        let report = stream.ingest(batch).expect("replay is a valid feed");
        for inc in &mut incs {
            inc.refresh(stream.index(), &report);
            let arrivals: Vec<String> = stream
                .index()
                .tvg()
                .nodes()
                .map(|n| fmt_arrival(inc.arrival(n)))
                .collect();
            println!(
                "stream {name} tick={tick} policy={} events={} inc: {}",
                inc.policy(),
                stream.index().num_edge_events(),
                arrivals.join(",")
            );
        }
    }
    // One batched query tick against the final snapshot per policy.
    let sources: Vec<NodeId> = stream.index().tvg().nodes().collect();
    for policy in policies() {
        let (reached, stats) = BatchRunner::new(stream.index(), Batch::auto()).map_sources(
            &sources,
            &0,
            &policy,
            &limits,
            |_, tree| tree.num_reached(),
        );
        let row: Vec<String> = reached.iter().map(usize::to_string).collect();
        println!(
            "stream {name} snapshot policy={policy} runs={} reached: {}",
            stats.runs,
            row.join(",")
        );
    }
}

fn main() {
    // Stderr, not stdout: the dump itself must be canonical so CI can
    // `diff` two runs at different thread counts byte for byte.
    eprintln!("batch threads: {}", Batch::auto().num_threads());

    dump_streamed(
        "scale_free(40,32,17)",
        &scale_free_temporal(40, 32, 17),
        32,
        6,
    );

    let params = EdgeMarkovianParams {
        num_nodes: 12,
        p_birth: 0.07,
        p_death: 0.45,
        steps: 36,
    };
    for seed in 0..2u64 {
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
        // The trace-native streaming path (one ingest batch per step).
        let stream = trace.to_stream();
        let limits = SearchLimits::new(trace.len() as u64, trace.len());
        let sources: Vec<NodeId> = stream.index().tvg().nodes().collect();
        for policy in policies() {
            let out = BatchRunner::new(stream.index(), Batch::auto())
                .run_sources(&sources, &0, &policy, &limits);
            for (src, tree) in sources.iter().zip(out.trees()) {
                let row: Vec<String> = sources
                    .iter()
                    .map(|&dst| fmt_arrival(tree.arrival(dst)))
                    .collect();
                println!(
                    "trace seed={seed} policy={policy} src={}: {}",
                    src.index(),
                    row.join(",")
                );
            }
        }
    }
}
