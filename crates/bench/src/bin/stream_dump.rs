//! Canonical streaming-ingestion dump for the determinism gate, driven
//! by the bundled streaming scenario specs.
//!
//! The workloads come from the `plan streaming` specs under `scenarios/`
//! (discovered through the same `tvg_cli::spec_files` walk the golden
//! gates use, so a newly added streaming spec joins this gate
//! automatically; batch-side plans are covered by `matrix_dump`): each
//! scenario's generator and batch size define the feed (a schedule
//! replay, or the churn family's native join/leave feed), which is then
//! driven through the streaming path — batched ingest ticks,
//! incremental foremost repair per tick, and a batched all-sources query
//! against the live snapshot — across all three waiting policies, every
//! answer printed in a fixed textual format. The batch thread count
//! follows `TVG_BATCH_THREADS` (via `Batch::auto`), so CI runs this
//! binary at `=1` and `=4` and diffs the outputs byte for byte: any
//! parallel nondeterminism on the live-snapshot query path, and any
//! divergence of the incremental repair across runs, fails the build.
//!
//! Usage: `TVG_BATCH_THREADS=4 cargo run --release -p tvg-bench --bin stream_dump`

use tvg_bench::fmt_arrival;
use tvg_journeys::{Batch, BatchRunner, IncrementalForemost, WaitingPolicy};
use tvg_model::NodeId;
use tvg_scenarios::{Plan, Scenario};

fn policies() -> [WaitingPolicy<u64>; 3] {
    [
        WaitingPolicy::NoWait,
        WaitingPolicy::Bounded(3),
        WaitingPolicy::Unbounded,
    ]
}

/// Ingests the scenario's stream feed (schedule replay, or the churn
/// family's native join/leave feed) in its spec-declared batch size;
/// after each tick, dumps the repaired incremental tree per policy, then
/// one batched all-sources query against the final live snapshot.
fn dump_streamed(s: &Scenario) {
    let Plan::Streaming {
        src, start, batch, ..
    } = s.plan()
    else {
        unreachable!("stream_dump only embeds streaming specs");
    };
    let g = s.build_graph();
    let limits = s.limits();
    let (mut stream, events) = s.stream_feed(&g, limits.horizon);
    let source = NodeId::from_index(*src);
    let mut incs: Vec<IncrementalForemost<u64>> = policies()
        .into_iter()
        .map(|p| IncrementalForemost::new(stream.index(), &[(source, *start)], p, limits.clone()))
        .collect();
    for (tick, chunk) in events.chunks(*batch).enumerate() {
        let report = stream.ingest(chunk).expect("scenario feeds are valid");
        for inc in &mut incs {
            inc.refresh(stream.index(), &report);
            let arrivals: Vec<String> = stream
                .index()
                .tvg()
                .nodes()
                .map(|n| fmt_arrival(inc.arrival(n)))
                .collect();
            println!(
                "stream {} tick={tick} policy={} events={} inc: {}",
                s.name(),
                inc.policy(),
                stream.index().num_edge_events(),
                arrivals.join(",")
            );
        }
    }
    // One batched query tick against the final snapshot per policy.
    let sources: Vec<NodeId> = stream.index().tvg().nodes().collect();
    for policy in policies() {
        let (reached, stats) = BatchRunner::new(stream.index(), Batch::auto()).map_sources(
            &sources,
            start,
            &policy,
            &limits,
            |_, tree| tree.num_reached(),
        );
        let row: Vec<String> = reached.iter().map(usize::to_string).collect();
        println!(
            "stream {} snapshot policy={policy} runs={} reached: {}",
            s.name(),
            stats.runs,
            row.join(",")
        );
    }
}

fn main() {
    // Stderr, not stdout: the dump itself must be canonical so CI can
    // `diff` two runs at different thread counts byte for byte.
    eprintln!("batch threads: {}", Batch::auto().num_threads());

    for (spec, _) in tvg_cli::spec_files(&tvg_cli::bundled_scenarios_dir()).expect("bundled specs")
    {
        for scenario in tvg_cli::load_specs(&spec).expect("bundled specs are valid") {
            // Batch-side plans dump through `matrix_dump`.
            if matches!(scenario.plan(), Plan::Streaming { .. }) {
                println!("report {}", scenario.run().canonical_json());
                dump_streamed(&scenario);
            }
        }
    }
}
