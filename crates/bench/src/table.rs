//! Minimal fixed-width table rendering for experiment output.

use std::fmt;

/// A titled table with a header row and string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(ToString::to_string).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a free-text note rendered under the table.
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.notes.push(text.to_string());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor for tests: `(row, column)`.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i].saturating_sub(cell.chars().count());
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_like_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1", "long-cell"]);
        t.row(&["22", "b"]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| x  | y         |"));
        assert!(s.contains("| 22 | b         |"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = Table::new("pad", &["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.cell(0, 2), Some(""));
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(9, 0), None);
    }
}
