//! The experiment implementations behind `EXPERIMENTS.md`.
//!
//! Experiment ids follow DESIGN.md §5: E1 = Figure 1/Table 1,
//! E2 = Theorem 2.1, E3 = Theorem 2.2, E4 = Theorem 2.3, E5 = the
//! motivating protocol claim, E6 = ablations. Every function is
//! deterministic (fixed seeds) so the tables are reproducible
//! byte-for-byte.

use crate::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;
use tvg_bigint::Nat;
use tvg_dynnet::broadcast::{run_broadcast, BroadcastConfig, ForwardingMode};
use tvg_dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};
use tvg_dynnet::metrics::AggregateStats;
use tvg_dynnet::routing::delivery_ratio;
use tvg_expressivity::anbn::{anbn_word, is_anbn, AnbnAutomaton};
use tvg_expressivity::dilation::{dilation_disagreements, waiting_gain};
use tvg_expressivity::nowait_power::DeciderAutomaton;
use tvg_expressivity::wait_regular::{dfa_to_tvg_automaton, periodic_to_nfa, sufficient_limits};
use tvg_expressivity::TvgAutomaton;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_langs::sample::words_upto;
use tvg_langs::{machines, myhill, Alphabet, Grammar, Regex, Word};
use tvg_model::generators::{random_periodic_tvg, RandomPeriodicParams};
use tvg_model::{Latency, NodeId, Presence, Time, TvgBuilder};

/// The staggered two-hop periodic automaton used by E4/E6 (a `b`-link
/// that departs two steps after the `a`-link delivers).
#[must_use]
pub fn staggered_automaton() -> TvgAutomaton<u64> {
    let mut b = TvgBuilder::<u64>::new();
    let v = b.nodes(3);
    b.edge(
        v[0],
        v[1],
        'a',
        Presence::Periodic {
            period: 4,
            phases: BTreeSet::from([0]),
        },
        Latency::unit(),
    )
    .expect("valid");
    b.edge(
        v[1],
        v[2],
        'b',
        Presence::Periodic {
            period: 4,
            phases: BTreeSet::from([3]),
        },
        Latency::unit(),
    )
    .expect("valid");
    // Cycle back so the languages are infinite.
    b.edge(
        v[2],
        v[0],
        'a',
        Presence::Periodic {
            period: 4,
            phases: BTreeSet::from([0, 2]),
        },
        Latency::unit(),
    )
    .expect("valid");
    TvgAutomaton::new(
        b.build().expect("valid"),
        BTreeSet::from([v[0]]),
        BTreeSet::from([v[2]]),
        0,
    )
    .expect("valid")
}

/// A random periodic automaton for the E3/E4 sweeps.
#[must_use]
pub fn random_periodic_automaton(seed: u64, period: u64) -> TvgAutomaton<u64> {
    let params = RandomPeriodicParams {
        num_nodes: 5,
        num_edges: 8,
        period,
        phase_density: 0.4,
        alphabet: Alphabet::ab(),
    };
    let g = random_periodic_tvg(&mut StdRng::seed_from_u64(seed), &params);
    TvgAutomaton::new(
        g,
        BTreeSet::from([NodeId::from_index(0)]),
        BTreeSet::from([NodeId::from_index(4)]),
        0,
    )
    .expect("valid")
}

// ------------------------------------------------------------------ E1 --

/// E1a (Figure 1): acceptance and clock growth for `aⁿbⁿ`.
#[must_use]
pub fn e1_membership() -> Table {
    let aut = AnbnAutomaton::smallest();
    let mut t = Table::new(
        "E1a — Figure 1: A(G) accepts aⁿbⁿ by direct journeys (p=2, q=3)",
        &[
            "n",
            "word",
            "accepted",
            "a^n b^(n-1) rejected",
            "a^(n-1) b^n rejected",
            "peak clock (decimal digits)",
            "time",
        ],
    );
    for n in [1usize, 2, 4, 8, 16, 32, 48, 64] {
        let w = anbn_word(n);
        let start = Instant::now();
        let accepted = aut.accepts_nowait(&w);
        let elapsed = start.elapsed();
        let miss1 = format!("{}{}", "a".repeat(n), "b".repeat(n - 1))
            .parse::<Word>()
            .expect("ascii");
        let miss2 = format!("{}{}", "a".repeat(n.saturating_sub(1)), "b".repeat(n))
            .parse::<Word>()
            .expect("ascii");
        let peak = Nat::from(2u64).pow(n as u32) * Nat::from(3u64).pow(n.saturating_sub(1) as u32);
        t.row(&[
            n.to_string(),
            format!("a^{n} b^{n}"),
            accepted.to_string(),
            (!aut.accepts_nowait(&miss1)).to_string(),
            (!aut.accepts_nowait(&miss2)).to_string(),
            peak.to_string().len().to_string(),
            format!("{:.2?}", elapsed),
        ]);
    }
    t.note("paper: L_nowait(G) = {aⁿbⁿ : n ≥ 1}; clock peaks at pⁿqⁿ⁻¹ (time is the counter)");
    t
}

/// E1b: exhaustive cross-check against the reference decider.
#[must_use]
pub fn e1_exhaustive(max_len: usize) -> Table {
    let aut = AnbnAutomaton::smallest();
    let mut t = Table::new(
        "E1b — exhaustive verification of L_nowait(G) = aⁿbⁿ",
        &["max length", "words checked", "mismatches"],
    );
    let words = words_upto(&Alphabet::ab(), max_len);
    let mismatches = words
        .iter()
        .filter(|w| aut.accepts_nowait(w) != is_anbn(w))
        .count();
    t.row(&[
        max_len.to_string(),
        words.len().to_string(),
        mismatches.to_string(),
    ]);
    t.note("paper: zero mismatches expected (Theorem-level claim for Figure 1)");
    t
}

// ------------------------------------------------------------------ E2 --

/// E2 (Theorem 2.1): six computable languages as no-wait TVG languages.
#[must_use]
pub fn e2_computable_languages() -> Table {
    let mut t = Table::new(
        "E2 — Theorem 2.1: L_nowait ⊇ computable (decider runs in the schedule)",
        &[
            "language",
            "class",
            "decider",
            "|Σ|",
            "checked ≤ len",
            "words",
            "mismatches",
        ],
    );
    struct Case {
        name: &'static str,
        class: &'static str,
        kind: &'static str,
        alphabet: Alphabet,
        len: usize,
        aut: DeciderAutomaton,
        reference: Box<dyn Fn(&Word) -> bool>,
    }
    let anbn_g = Grammar::anbn();
    let dyck_g = Grammar::dyck1();
    let cases: Vec<Case> = vec![
        Case {
            name: "aⁿbⁿ",
            class: "context-free",
            kind: "grammar (Earley)",
            alphabet: Alphabet::ab(),
            len: 10,
            aut: DeciderAutomaton::new(Alphabet::ab(), {
                let g = anbn_g.clone();
                Arc::new(move |w| g.recognizes(w))
            }),
            reference: Box::new(move |w| anbn_g.recognizes(w)),
        },
        Case {
            name: "Dyck-1",
            class: "context-free",
            kind: "grammar (Earley)",
            alphabet: Alphabet::ab(),
            len: 9,
            aut: DeciderAutomaton::new(Alphabet::ab(), {
                let g = dyck_g.clone();
                Arc::new(move |w| g.recognizes(w))
            }),
            reference: Box::new(move |w| dyck_g.recognizes(w)),
        },
        Case {
            name: "aⁿbⁿcⁿ",
            class: "context-sensitive",
            kind: "Turing machine",
            alphabet: Alphabet::abc(),
            len: 7,
            aut: DeciderAutomaton::from_turing_machine(
                Alphabet::abc(),
                machines::anbncn(),
                100_000,
            ),
            reference: Box::new(|w| machines::anbncn().decide(w, 100_000)),
        },
        Case {
            name: "palindromes",
            class: "context-free",
            kind: "Turing machine",
            alphabet: Alphabet::ab(),
            len: 8,
            aut: DeciderAutomaton::from_turing_machine(
                Alphabet::ab(),
                machines::palindrome(),
                100_000,
            ),
            reference: Box::new(|w| *w == w.reversed()),
        },
        Case {
            name: "unary primes",
            class: "decidable, not CF",
            kind: "Miller–Rabin",
            alphabet: Alphabet::from_chars("a").expect("valid"),
            len: 30,
            aut: DeciderAutomaton::new(
                Alphabet::from_chars("a").expect("valid"),
                Arc::new(|w| tvg_bigint::is_prime_u64(w.len() as u64)),
            ),
            reference: Box::new(|w| tvg_bigint::is_prime_u64(w.len() as u64)),
        },
        Case {
            name: "aⁿbⁿ (CM)",
            class: "context-free",
            kind: "counter machine",
            alphabet: Alphabet::ab(),
            len: 9,
            aut: DeciderAutomaton::new(Alphabet::ab(), {
                let eq = tvg_langs::counter::programs::equal();
                let shape = Regex::parse("a*b*", &Alphabet::ab())
                    .expect("parses")
                    .to_nfa(&Alphabet::ab())
                    .to_dfa();
                Arc::new(move |w| {
                    w.len() >= 2
                        && shape.accepts(w)
                        && eq.decide_encoded(
                            |w| vec![w.count_char('a') as u64, w.count_char('b') as u64],
                            w,
                            10_000,
                        )
                })
            }),
            reference: Box::new(|w| {
                let n = w.count_char('a');
                n >= 1
                    && w.len() == 2 * n
                    && w.iter().take(n).all(|l| l.as_char() == 'a')
                    && w.iter().skip(n).all(|l| l.as_char() == 'b')
            }),
        },
        Case {
            name: "unary squares",
            class: "decidable, not CF",
            kind: "closure",
            alphabet: Alphabet::from_chars("a").expect("valid"),
            len: 26,
            aut: DeciderAutomaton::new(
                Alphabet::from_chars("a").expect("valid"),
                Arc::new(|w| {
                    let n = w.len() as u64;
                    let r = (n as f64).sqrt().round() as u64;
                    r * r == n
                }),
            ),
            reference: Box::new(|w| {
                let n = w.len() as u64;
                let r = (n as f64).sqrt().round() as u64;
                r * r == n
            }),
        },
    ];
    for case in cases {
        let words: Vec<Word> = words_upto(&case.alphabet, case.len)
            .into_iter()
            .filter(|w| !w.is_empty())
            .collect();
        let mismatches = words
            .iter()
            .filter(|w| case.aut.accepts_nowait(w) != (case.reference)(w))
            .count();
        t.row(&[
            case.name.to_string(),
            case.class.to_string(),
            case.kind.to_string(),
            case.alphabet.len().to_string(),
            case.len.to_string(),
            words.len().to_string(),
            mismatches.to_string(),
        ]);
    }
    t.note("paper: every computable L equals L_nowait(G) for some G — zero mismatches expected");
    t
}

// ------------------------------------------------------------------ E3 --

/// E3a (Theorem 2.2, ⊆): periodic TVGs compile to NFAs matching
/// simulation exactly.
#[must_use]
pub fn e3_periodic_compilation() -> Table {
    let alphabet = Alphabet::ab();
    let mut t = Table::new(
        "E3a — Theorem 2.2: L_wait of periodic TVGs is regular (compiler vs simulation)",
        &[
            "seed",
            "period",
            "NFA states",
            "DFA states",
            "min-DFA states",
            "lang ≤ 7 identical",
        ],
    );
    for seed in 0..8u64 {
        let period = 2 + seed % 3;
        let aut = random_periodic_automaton(seed, period);
        let nfa = periodic_to_nfa(&aut, period, &WaitingPolicy::Unbounded, &alphabet)
            .expect("periodic by construction");
        let dfa = nfa.to_dfa();
        let min = dfa.minimize();
        let limits = sufficient_limits(&aut, period, 7);
        let simulated = aut.language_upto(&WaitingPolicy::Unbounded, &limits, 7);
        let compiled: BTreeSet<Word> = min.language_upto(7).into_iter().collect();
        t.row(&[
            seed.to_string(),
            period.to_string(),
            nfa.num_states().to_string(),
            dfa.num_states().to_string(),
            min.num_states().to_string(),
            (simulated == compiled).to_string(),
        ]);
    }
    t.note("paper: L_wait is regular — witnessed here by concrete minimal DFAs");
    t
}

/// E3b (Theorem 2.2, ⊇): every regular language is some TVG's waiting
/// language.
#[must_use]
pub fn e3_regular_embedding() -> Table {
    let alphabet = Alphabet::ab();
    let mut t = Table::new(
        "E3b — Theorem 2.2: regular ⊆ L_wait (DFA → always-present TVG)",
        &[
            "regex",
            "min-DFA states",
            "nowait = wait = wait[2] = L(dfa) (≤ 6)",
        ],
    );
    for pattern in ["(a|b)*ab", "a*b*", "(ab)*", "a(a|b)+", "(a|b)*b(a|b)*"] {
        let dfa = Regex::parse(pattern, &alphabet)
            .expect("parses")
            .to_nfa(&alphabet)
            .to_dfa()
            .minimize();
        let aut = dfa_to_tvg_automaton(&dfa);
        let limits = SearchLimits::new(20, 7);
        let ok = words_upto(&alphabet, 6).into_iter().all(|w| {
            let expected = dfa.accepts(&w);
            aut.accepts(&w, &WaitingPolicy::NoWait, &limits) == expected
                && aut.accepts(&w, &WaitingPolicy::Bounded(2), &limits) == expected
                && aut.accepts(&w, &WaitingPolicy::Unbounded, &limits) == expected
        });
        t.row(&[
            pattern.to_string(),
            dfa.num_states().to_string(),
            ok.to_string(),
        ]);
    }
    t.note("static schedules make waiting irrelevant: all policies agree with the DFA");
    t
}

/// E3c: Myhill–Nerode residual growth — the regular/non-regular contrast.
#[must_use]
pub fn e3_residual_contrast() -> Table {
    let alphabet = Alphabet::ab();
    let fig1 = AnbnAutomaton::smallest();
    // Waiting language of a periodic graph via its compiled minimal DFA
    // (seed 7 has a nontrivial language; see E3a).
    let aut = random_periodic_automaton(7, 3);
    let wait_dfa = periodic_to_nfa(&aut, 3, &WaitingPolicy::Unbounded, &alphabet)
        .expect("periodic")
        .to_dfa()
        .minimize();
    let nowait_growth = myhill::residual_growth(&alphabet, 6, 6, |w| fig1.accepts_nowait(w));
    let wait_growth = myhill::residual_growth(&alphabet, 6, 6, |w| wait_dfa.accepts(w));
    let mut t = Table::new(
        "E3c — residual (Myhill–Nerode) lower bounds: L_nowait grows, L_wait saturates",
        &[
            "prefix budget",
            "L_nowait(Figure 1) residuals",
            "L_wait(periodic) residuals",
        ],
    );
    for (i, (n, w)) in nowait_growth.iter().zip(&wait_growth).enumerate() {
        t.row(&[i.to_string(), n.to_string(), w.to_string()]);
    }
    t.note(&format!(
        "wait-side minimal DFA has {} states — the saturation level",
        wait_dfa.num_states()
    ));
    t
}

/// E3d: L\* learns `L_wait` from membership queries against the journey
/// simulator — Theorem 2.2 made operational.
#[must_use]
pub fn e3_lstar_learning() -> Table {
    use tvg_langs::learn::{bounded_equivalence, learn_dfa};
    let alphabet = Alphabet::ab();
    let mut t = Table::new(
        "E3d — Theorem 2.2 operational: L* learns L_wait from queries alone",
        &[
            "seed",
            "learned DFA states",
            "compiled min-DFA states",
            "equivalent",
        ],
    );
    for seed in [0u64, 3, 5, 7] {
        let aut = random_periodic_automaton(seed, 3);
        let limits = sufficient_limits(&aut, 3, 8);
        let oracle = |w: &Word| aut.accepts(w, &WaitingPolicy::Unbounded, &limits);
        let learned = learn_dfa(
            &alphabet,
            oracle,
            |hyp| bounded_equivalence(hyp, oracle, &alphabet, 7),
            32,
        )
        .expect("regular languages are learnable");
        let compiled = periodic_to_nfa(&aut, 3, &WaitingPolicy::Unbounded, &alphabet)
            .expect("periodic")
            .to_dfa()
            .minimize();
        t.row(&[
            seed.to_string(),
            learned.num_states().to_string(),
            compiled.num_states().to_string(),
            learned.equivalent_to(&compiled).to_string(),
        ]);
    }
    t.note("the learner never sees the graph — only membership answers from the simulator");
    t
}

// ------------------------------------------------------------------ E4 --

/// E4 (Theorem 2.3): dilation makes `L_wait[d]` equal `L_nowait`.
#[must_use]
pub fn e4_dilation() -> Table {
    let alphabet = Alphabet::ab();
    let mut t = Table::new(
        "E4 — Theorem 2.3: L_wait[d](dilate(G,d)) = L_nowait(G)",
        &[
            "graph",
            "d",
            "wait[d] gain before dilation",
            "disagreements after dilation",
        ],
    );
    let graphs: Vec<(&str, TvgAutomaton<u64>)> = vec![
        ("staggered", staggered_automaton()),
        ("random#1", random_periodic_automaton(1, 4)),
        ("random#2", random_periodic_automaton(2, 4)),
    ];
    for (name, aut) in &graphs {
        for d in [1u64, 2, 4, 8] {
            let limits = SearchLimits::new(60, 6);
            let gain = waiting_gain(aut, d, &alphabet, 5, &limits).len();
            let disagreements = dilation_disagreements(aut, d, &alphabet, 5, &limits).len();
            t.row(&[
                (*name).to_string(),
                d.to_string(),
                gain.to_string(),
                disagreements.to_string(),
            ]);
        }
    }
    t.note("paper: right column must be all zeros; left column nonzero rows show the equality is not vacuous");
    t
}

/// E4b: the non-regular `aⁿbⁿ` survives bounded waiting (via dilation of
/// Figure 1) — the contrast with Theorem 2.2.
#[must_use]
pub fn e4_nonregular_survives() -> Table {
    let fig1 = AnbnAutomaton::smallest();
    let mut t = Table::new(
        "E4b — aⁿbⁿ ∈ L_wait[d] via the dilated Figure 1 (bounded waiting keeps Turing power)",
        &["d", "n", "a^n b^n accepted", "a^n b^(n+1) rejected"],
    );
    for d in [1u64, 3] {
        for n in [1usize, 3, 5] {
            let dilated = fig1.automaton().dilate(d);
            let inner = fig1.limits_for(2 * n + 1);
            let limits = SearchLimits::new(
                inner.horizon.checked_mul_u64(d + 1).expect("nat"),
                inner.max_hops,
            );
            let good = dilated.accepts(
                &anbn_word(n),
                &WaitingPolicy::Bounded(Nat::from(d)),
                &limits,
            );
            let miss: Word = format!("{}{}", "a".repeat(n), "b".repeat(n + 1))
                .parse()
                .expect("ascii");
            let bad = dilated.accepts(&miss, &WaitingPolicy::Bounded(Nat::from(d)), &limits);
            t.row(&[
                d.to_string(),
                n.to_string(),
                good.to_string(),
                (!bad).to_string(),
            ]);
        }
    }
    t.note("expected: all true — L_wait[d] = L_nowait ⊋ regular");
    t
}

// ------------------------------------------------------------------ E5 --

/// E5: store-carry-forward vs bounded buffers vs no-wait broadcast on
/// edge-Markovian graphs (`p_birth` = 0.005).
#[must_use]
pub fn e5_broadcast(num_nodes: usize, steps: usize, seeds: u64) -> Table {
    let mut t = Table::new(
        "E5 — waiting in protocols: broadcast delivery on edge-Markovian graphs",
        &[
            "p_death",
            "density",
            "SCF delivery",
            "SCF mean t",
            "buffer[8] delivery",
            "buffer[2] delivery",
            "no-wait delivery",
            "no-wait mean t",
        ],
    );
    for p_death in [0.1, 0.4, 0.8, 0.9, 0.95] {
        let params = EdgeMarkovianParams {
            num_nodes,
            p_birth: 0.005,
            p_death,
            steps,
        };
        let mut per_mode: Vec<Vec<tvg_dynnet::metrics::DeliveryStats>> = vec![Vec::new(); 4];
        let modes = [
            ForwardingMode::StoreCarryForward,
            ForwardingMode::BoundedBuffer(8),
            ForwardingMode::BoundedBuffer(2),
            ForwardingMode::NoWaitRelay,
        ];
        for seed in 0..seeds {
            let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(seed), &params);
            for (i, &mode) in modes.iter().enumerate() {
                per_mode[i].push(
                    run_broadcast(
                        &trace,
                        &BroadcastConfig {
                            source: 0,
                            mode,
                            source_beacons: true,
                        },
                    )
                    .stats(),
                );
            }
        }
        let agg: Vec<AggregateStats> = per_mode
            .iter()
            .map(|runs| AggregateStats::from_runs(runs))
            .collect();
        t.row(&[
            format!("{p_death:.2}"),
            format!("{:.3}", params.stationary_density()),
            format!("{:.1}%", agg[0].mean_delivery_ratio * 100.0),
            format!("{:.1}", agg[0].mean_time.unwrap_or(f64::NAN)),
            format!("{:.1}%", agg[1].mean_delivery_ratio * 100.0),
            format!("{:.1}%", agg[2].mean_delivery_ratio * 100.0),
            format!("{:.1}%", agg[3].mean_delivery_ratio * 100.0),
            format!("{:.1}", agg[3].mean_time.unwrap_or(f64::NAN)),
        ]);
    }
    t.note("bounded buffers interpolate between no-wait and store-carry-forward — Theorem 2.3's regime as a protocol");
    t
}

/// E5b: unicast routing ratio per waiting policy on one trace family.
#[must_use]
pub fn e5_routing(num_nodes: usize, steps: usize) -> Table {
    let mut t = Table::new(
        "E5b — unicast: fraction of ordered pairs connected by a journey",
        &["p_death", "nowait", "wait[2]", "wait[8]", "wait"],
    );
    for p_death in [0.2, 0.4, 0.6] {
        let params = EdgeMarkovianParams {
            num_nodes,
            p_birth: 0.01,
            p_death,
            steps,
        };
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(42), &params);
        let row: Vec<String> = std::iter::once(format!("{p_death:.1}"))
            .chain(
                [
                    WaitingPolicy::NoWait,
                    WaitingPolicy::Bounded(2),
                    WaitingPolicy::Bounded(8),
                    WaitingPolicy::Unbounded,
                ]
                .iter()
                .map(|p| format!("{:.1}%", delivery_ratio(&trace, 0, p) * 100.0)),
            )
            .collect();
        t.row(&row);
    }
    t.note("monotone in the waiting bound by construction; the spread is the power of waiting");
    t
}

// ------------------------------------------------------------------ E6 --

/// E6a: prime choice vs clock growth in the Figure-1 construction.
#[must_use]
pub fn e6_prime_ablation() -> Table {
    let mut t = Table::new(
        "E6a — ablation: prime parameters vs clock size in Figure 1 (n = 24)",
        &["p", "q", "peak clock bits", "accepts a²⁴b²⁴", "time"],
    );
    let n = 24usize;
    for (p, q) in [(2u64, 3u64), (3, 2), (5, 7), (13, 17), (101, 103)] {
        let aut = AnbnAutomaton::new(p, q).expect("distinct primes");
        let peak = Nat::from(p).pow(n as u32) * Nat::from(q).pow(n as u32 - 1);
        let start = Instant::now();
        let ok = aut.accepts_nowait(&anbn_word(n));
        let elapsed = start.elapsed();
        t.row(&[
            p.to_string(),
            q.to_string(),
            peak.bits().to_string(),
            ok.to_string(),
            format!("{elapsed:.2?}"),
        ]);
    }
    t.note("language is invariant under the prime choice; only the clock magnitude changes");
    t
}

/// E6b: compiled automaton size vs period and policy.
#[must_use]
pub fn e6_nfa_size_ablation() -> Table {
    let alphabet = Alphabet::ab();
    let mut t = Table::new(
        "E6b — ablation: compiled NFA/min-DFA size vs period and policy",
        &["period", "policy", "NFA states", "min-DFA states"],
    );
    for period in [2u64, 4, 6, 8] {
        // Pick the first seed whose waiting language is nontrivial, so
        // the size comparison is meaningful.
        let aut = (0..20u64)
            .map(|seed| random_periodic_automaton(seed, period))
            .find(|aut| {
                periodic_to_nfa(aut, period, &WaitingPolicy::Unbounded, &alphabet)
                    .expect("periodic")
                    .to_dfa()
                    .minimize()
                    .num_states()
                    > 1
            })
            .unwrap_or_else(|| random_periodic_automaton(7, period));
        for policy in [
            WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(1),
            WaitingPolicy::Unbounded,
        ] {
            let nfa = periodic_to_nfa(&aut, period, &policy, &alphabet).expect("periodic");
            let min = nfa.to_dfa().minimize();
            t.row(&[
                period.to_string(),
                policy.to_string(),
                nfa.num_states().to_string(),
                min.num_states().to_string(),
            ]);
        }
    }
    t.note("NFA states = nodes × period by construction; minimization collapses most");
    t
}

/// E6c: horizon sensitivity of the sampled waiting language.
#[must_use]
pub fn e6_horizon_ablation() -> Table {
    let aut = staggered_automaton();
    let mut t = Table::new(
        "E6c — ablation: search horizon vs sampled |L_wait| (staggered graph, ≤ 6)",
        &["horizon", "|L_wait ∩ Σ^≤6|"],
    );
    for horizon in [2u64, 4, 8, 16, 32, 64] {
        let limits = SearchLimits::new(horizon, 7);
        let lang = aut.language_upto(&WaitingPolicy::Unbounded, &limits, 6);
        t.row(&[horizon.to_string(), lang.len().to_string()]);
    }
    t.note("the count must plateau once the horizon covers max_len hops plus one period per hop");
    t
}

/// E6d: clock digit growth per prefix — the "figure" of Figure 1.
#[must_use]
pub fn e6_clock_trace() -> Table {
    let aut = AnbnAutomaton::smallest();
    let w = anbn_word(8);
    let trace = aut.nowait_trace(&w).expect("a⁸b⁸ is accepted");
    let mut t = Table::new(
        "E6d — the Figure-1 clock along the accepting run of a⁸b⁸",
        &["step", "node", "clock"],
    );
    for (i, (node, clock)) in trace.iter().enumerate() {
        t.row(&[i.to_string(), node.clone(), clock.to_string()]);
    }
    t.note("doubles on each a (×p), triples on each b (×q); e4 opens exactly at 2⁸·3⁷");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_tables_report_no_mismatches() {
        let t = e1_exhaustive(8);
        assert_eq!(t.cell(0, 2), Some("0"));
        let m = e1_membership();
        for row in 0..m.num_rows() {
            assert_eq!(m.cell(row, 2), Some("true"), "row {row}");
            assert_eq!(m.cell(row, 3), Some("true"), "row {row}");
            assert_eq!(m.cell(row, 4), Some("true"), "row {row}");
        }
    }

    #[test]
    fn e2_table_reports_no_mismatches() {
        let t = e2_computable_languages();
        assert_eq!(t.num_rows(), 7);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 6), Some("0"), "row {row}");
        }
    }

    #[test]
    fn e3_tables_report_equalities() {
        let a = e3_periodic_compilation();
        for row in 0..a.num_rows() {
            assert_eq!(a.cell(row, 5), Some("true"), "row {row}");
        }
        let b = e3_regular_embedding();
        for row in 0..b.num_rows() {
            assert_eq!(b.cell(row, 2), Some("true"), "row {row}");
        }
    }

    #[test]
    fn e4_dilation_rows_are_zero() {
        let t = e4_dilation();
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 3), Some("0"), "row {row}");
        }
        let s = e4_nonregular_survives();
        for row in 0..s.num_rows() {
            assert_eq!(s.cell(row, 2), Some("true"), "row {row}");
            assert_eq!(s.cell(row, 3), Some("true"), "row {row}");
        }
    }

    #[test]
    fn e6_horizon_plateaus() {
        let t = e6_horizon_ablation();
        let last = t.cell(t.num_rows() - 1, 1).expect("has rows").to_string();
        let prev = t.cell(t.num_rows() - 2, 1).expect("has rows").to_string();
        assert_eq!(last, prev, "language count must plateau");
    }
}
