//! Index-vs-scan benchmark: the compiled temporal index against the
//! tick-scan reference oracle on the paper fixtures and on a generated
//! TVG with ≥ 10k edge events (experiment E7).
//!
//! Three comparisons:
//!
//! * `compile`: one-time cost of building the index (the amortized part
//!   of compile-once/query-many);
//! * `foremost_pair`: a single source→target foremost query, indexed
//!   engine vs. tick scan;
//! * `all_destinations`: foremost arrivals from one source to every
//!   node — one engine pass vs. n oracle searches (the
//!   `ReachabilityMatrix` row workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tvg_journeys::engine::{foremost_to, foremost_tree};
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_model::generators::{random_periodic_tvg, RandomPeriodicParams};
use tvg_model::{NodeId, Tvg, TvgIndex};
use tvg_testkit::{fixtures, tickscan};

/// The large generated workload: sized so the compiled timeline holds at
/// least 10_000 edge events below the benchmark horizon.
fn large_tvg() -> (Tvg<u64>, u64) {
    let params = RandomPeriodicParams {
        num_nodes: 64,
        num_edges: 256,
        period: 16,
        phase_density: 0.5,
        alphabet: tvg_langs::Alphabet::ab(),
    };
    let g = random_periodic_tvg(&mut StdRng::seed_from_u64(7), &params);
    (g, 512)
}

fn bench_compile(c: &mut Criterion) {
    let (g, horizon) = large_tvg();
    let index = TvgIndex::compile(&g, horizon);
    let events = index.num_edge_events();
    assert!(
        events >= 10_000,
        "E7 workload must exceed 10k edge events, got {events}"
    );
    eprintln!(
        "temporal_index workload: {} nodes, {} edges, horizon {horizon}, {events} edge events",
        g.num_nodes(),
        g.num_edges(),
    );
    let mut group = c.benchmark_group("temporal_index_compile");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("compile", events), &g, |b, g| {
        b.iter(|| TvgIndex::compile(g, horizon).num_edge_events());
    });
    group.finish();
}

fn bench_foremost_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal_index_foremost_pair");
    group.sample_size(10);
    let (large, large_horizon) = large_tvg();
    let cases: Vec<(&str, Tvg<u64>, u64, usize)> = vec![
        ("commuter_line", fixtures::commuter_line(), 30, 6),
        ("ring_bus_16", fixtures::ring_bus(16, 16), 64, 18),
        ("large_10k_events", large, large_horizon, 24),
    ];
    for (name, g, horizon, max_hops) in &cases {
        let limits = SearchLimits::new(*horizon, *max_hops);
        let src = NodeId::from_index(0);
        let dst = NodeId::from_index(g.num_nodes() - 1);
        for (plabel, policy) in [
            ("nowait", WaitingPolicy::NoWait),
            ("bounded4", WaitingPolicy::Bounded(4)),
            ("unbounded", WaitingPolicy::Unbounded),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("tickscan_{plabel}"), name),
                g,
                |b, g| {
                    b.iter(|| tickscan::foremost_journey(g, src, dst, &0, &policy, &limits));
                },
            );
            let index = TvgIndex::compile(g, *horizon);
            group.bench_with_input(
                BenchmarkId::new(format!("indexed_{plabel}"), name),
                g,
                |b, _| {
                    b.iter(|| foremost_to(&index, src, dst, &0, &policy, &limits));
                },
            );
        }
    }
    group.finish();
}

fn bench_all_destinations(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal_index_all_destinations");
    // The tick-scan side runs n full searches per iteration; keep the
    // sample count low so the bench stays CI-smoke friendly.
    group.sample_size(3);
    let (g, horizon) = large_tvg();
    let limits = SearchLimits::new(horizon, 24);
    let src = NodeId::from_index(0);
    let index = TvgIndex::compile(&g, horizon);
    for (plabel, policy) in [
        ("bounded4", WaitingPolicy::Bounded(4)),
        ("unbounded", WaitingPolicy::Unbounded),
    ] {
        group.bench_with_input(
            BenchmarkId::new(format!("tickscan_n_searches_{plabel}"), "large"),
            &g,
            |b, g| {
                b.iter(|| {
                    g.nodes()
                        .filter(|&dst| {
                            dst == src
                                || tickscan::foremost_journey(g, src, dst, &0, &policy, &limits)
                                    .is_some()
                        })
                        .count()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("indexed_one_pass_{plabel}"), "large"),
            &g,
            |b, _| {
                b.iter(|| foremost_tree(&index, src, &0, &policy, &limits).num_reached());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_foremost_pair,
    bench_all_destinations
);
criterion_main!(benches);
