//! Incremental-vs-recompile benchmark for streaming ingestion
//! (experiment E9).
//!
//! The workload is the scale-free temporal contact graph replayed as a
//! live feed in fixed-size batches. Two strategies keep a foremost tree
//! (one source, `wait[3]`) current across the feed:
//!
//! * `incremental`: `TvgStream` ingest + `IncrementalForemost::refresh`
//!   per batch — presence structures are mutated at the right edge and
//!   only labels at or after each batch's earliest change re-relax;
//! * `recompile`: after each batch, materialize the accumulated
//!   schedule (`to_tvg`), `TvgIndex::compile` it from scratch, and
//!   rerun `foremost_tree` — the only option before the stream layer.
//!
//! Both strategies process identical feeds and are asserted to agree on
//! every arrival at the end. The measured quantity is the full
//! per-feed pipeline (ingest + query maintenance across all ticks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_journeys::{foremost_tree, IncrementalForemost, SearchLimits, WaitingPolicy};
use tvg_model::generators::scale_free_temporal;
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::{NodeId, TvgIndex};

const HORIZON: u64 = 64;
const BATCH: usize = 64;

fn workload(n: usize) -> (TvgStream<u64>, Vec<StreamEvent<u64>>) {
    let g = scale_free_temporal(n, HORIZON, 17);
    TvgStream::replay_of(&g, &HORIZON).expect("bench horizons are small")
}

fn limits() -> SearchLimits<u64> {
    SearchLimits::new(HORIZON, 16)
}

fn run_incremental(base: &TvgStream<u64>, events: &[StreamEvent<u64>]) -> Vec<Option<u64>> {
    let mut stream = base.clone();
    let src = NodeId::from_index(0);
    let mut inc = IncrementalForemost::new(
        stream.index(),
        &[(src, 0u64)],
        WaitingPolicy::Bounded(3),
        limits(),
    );
    for batch in events.chunks(BATCH) {
        let report = stream.ingest(batch).expect("replay is valid");
        inc.refresh(stream.index(), &report);
    }
    let n = stream.index().tvg().num_nodes();
    (0..n)
        .map(|i| inc.arrival(NodeId::from_index(i)).copied())
        .collect()
}

fn run_recompile(base: &TvgStream<u64>, events: &[StreamEvent<u64>]) -> Vec<Option<u64>> {
    let mut stream = base.clone();
    let src = NodeId::from_index(0);
    let mut answers = Vec::new();
    for batch in events.chunks(BATCH) {
        stream.ingest(batch).expect("replay is valid");
        let g = stream.to_tvg();
        let index = TvgIndex::compile(&g, *stream.index().horizon());
        let tree = foremost_tree(&index, src, &0, &WaitingPolicy::Bounded(3), &limits());
        answers = g.nodes().map(|n| tree.arrival(n).copied()).collect();
    }
    answers
}

fn bench_stream_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);
    for n in [200usize, 600] {
        let (base, events) = workload(n);
        let ticks = events.len().div_ceil(BATCH);
        eprintln!(
            "stream_ingest workload: n={n}, {} events, {ticks} ticks of {BATCH}",
            events.len()
        );
        // The strategies must agree before we time them.
        assert_eq!(
            run_incremental(&base, &events),
            run_recompile(&base, &events)
        );
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| run_incremental(&base, &events));
        });
        group.bench_with_input(BenchmarkId::new("recompile", n), &n, |b, _| {
            b.iter(|| run_recompile(&base, &events));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream_ingest);
criterion_main!(benches);
