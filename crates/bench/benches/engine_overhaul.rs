//! Engine-overhaul before/after benchmark (experiment E12): the
//! monomorphized, arena-backed explorer cores against the pre-overhaul
//! generic explorer preserved as `tvg_testkit::refengine`, on the E8
//! scale-free workload (n=20k).
//!
//! The differential suite (`crates/testkit/tests/engine_overhaul_props.rs`)
//! pins the two engines bit-identical; this bench measures what the
//! representation change buys. Three comparisons per policy:
//!
//! * `ref_*`: the old explorer — `BTreeMap`/`BTreeSet` frontiers, boxed
//!   parent maps, branchy per-label policy dispatch;
//! * `new_*`: the overhauled cores over the same `u64` index;
//! * `new_u32_*`: the overhauled cores over the `u32`-narrowed index —
//!   the domain the scenario runtime actually picks for this horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_journeys::engine::foremost_tree;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_model::generators::scale_free_temporal;
use tvg_model::{narrow_tvg, NodeId, TvgIndex};
use tvg_testkit::refengine::ref_foremost_tree;

const HORIZON: u64 = 256;
const MAX_HOPS: usize = 32;

fn bench_overhaul(c: &mut Criterion) {
    let g = scale_free_temporal(20_000, HORIZON, 42);
    let index = TvgIndex::compile(&g, HORIZON);
    let narrowed = narrow_tvg(&g, HORIZON).expect("horizon 256 fits u32");
    let h32 = u32::try_from(HORIZON).expect("fits u32");
    let index32 = TvgIndex::compile(&narrowed, h32);
    eprintln!(
        "engine_overhaul workload: {} nodes, {} edges, horizon {HORIZON}, {} edge events",
        g.num_nodes(),
        g.num_edges(),
        index.num_edge_events(),
    );
    let src = NodeId::from_index(0);
    let limits = SearchLimits::new(HORIZON, MAX_HOPS);
    let limits32 = SearchLimits::new(h32, MAX_HOPS);

    let mut group = c.benchmark_group("engine_overhaul_all_destinations");
    group.sample_size(10);
    for (plabel, policy) in [
        ("nowait", WaitingPolicy::NoWait),
        ("bounded4", WaitingPolicy::Bounded(4)),
        ("unbounded", WaitingPolicy::Unbounded),
    ] {
        let policy32 = match &policy {
            WaitingPolicy::NoWait => WaitingPolicy::NoWait,
            WaitingPolicy::Bounded(d) => {
                WaitingPolicy::Bounded(u32::try_from(*d).expect("fits u32"))
            }
            WaitingPolicy::Unbounded => WaitingPolicy::Unbounded,
        };
        // The two engines must agree before either is worth timing.
        let new = foremost_tree(&index, src, &0, &policy, &limits);
        let old = ref_foremost_tree(&index, &[(src, 0)], &policy, &limits, None);
        assert_eq!(new.num_reached(), old.num_reached(), "{plabel}: divergence");
        assert_eq!(new.stats(), old.stats(), "{plabel}: stats divergence");

        group.bench_with_input(BenchmarkId::new("ref", plabel), &index, |b, index| {
            b.iter(|| ref_foremost_tree(index, &[(src, 0)], &policy, &limits, None).num_reached());
        });
        group.bench_with_input(BenchmarkId::new("new", plabel), &index, |b, index| {
            b.iter(|| foremost_tree(index, src, &0, &policy, &limits).num_reached());
        });
        group.bench_with_input(BenchmarkId::new("new_u32", plabel), &index32, |b, index| {
            b.iter(|| foremost_tree(index, src, &0u32, &policy32, &limits32).num_reached());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhaul);
criterion_main!(benches);
