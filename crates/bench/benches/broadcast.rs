//! E5 bench: broadcast simulation cost, store-carry-forward vs no-wait,
//! vs network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tvg_dynnet::broadcast::{run_broadcast, BroadcastConfig, ForwardingMode};
use tvg_dynnet::markovian::{edge_markovian_trace, EdgeMarkovianParams};

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_broadcast");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let params = EdgeMarkovianParams {
            num_nodes: n,
            p_birth: 0.01,
            p_death: 0.4,
            steps: 100,
        };
        let trace = edge_markovian_trace(&mut StdRng::seed_from_u64(1), &params);
        for (label, mode) in [
            ("scf", ForwardingMode::StoreCarryForward),
            ("nowait", ForwardingMode::NoWaitRelay),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &trace, |b, trace| {
                b.iter(|| {
                    run_broadcast(
                        trace,
                        &BroadcastConfig {
                            source: 0,
                            mode,
                            source_beacons: true,
                        },
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_trace_generation");
    group.sample_size(10);
    for n in [32usize, 64] {
        let params = EdgeMarkovianParams {
            num_nodes: n,
            p_birth: 0.02,
            p_death: 0.4,
            steps: 100,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, params| {
            b.iter(|| edge_markovian_trace(&mut StdRng::seed_from_u64(1), params));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast, bench_trace_generation);
criterion_main!(benches);
