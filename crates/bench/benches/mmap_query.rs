//! In-memory vs file-backed index query race (experiment E14): the
//! compiled [`TvgIndex`] against a [`ShardedIndex`] reopened from the
//! `.tvgi` file it was serialized to, on an n=20k scale-free temporal
//! graph.
//!
//! Three comparisons:
//!
//! * `serialize`: `write_tvgi` + `ShardedIndex::open` round-trip cost
//!   by shard count — the amortized half of compile-once/query-many
//!   (what `tvg-cli compile` pays once so every later `run --index`
//!   process can skip the compile);
//! * `foremost_tree`: one-source-to-all-nodes engine pass on each index
//!   form under each waiting policy — the file-backed arena must not
//!   cost the engine an order of magnitude over the in-memory arrays;
//! * `scan`: straight-line structural traversal (adjacency +
//!   destination + monotone flag for every edge of every node) on each
//!   form — isolates accessor overhead from engine control flow.
//!
//! Every timed pair is preceded by an equality assertion (arrival
//! multiset and reach count): racing two indexes is only meaningful if
//! they answer identically, and the `.tvgi` round-trip oracle contract
//! (`tvg_testkit::tvgicheck`) is what licenses the substitution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_journeys::engine::foremost_tree;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_model::generators::scale_free_temporal;
use tvg_model::tvgi::{write_tvgi, ShardedIndex};
use tvg_model::{NodeId, TemporalIndex, TvgIndex};

const NODES: usize = 20_000;
const HORIZON: u64 = 64;

/// Scratch `.tvgi` path for this bench process.
fn scratch(label: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mmap-query-{}-{label}.tvgi", std::process::id()))
}

/// The E14 graph. The in-memory index borrows it, so each bench fn
/// compiles its own index over a locally built graph.
fn graph() -> tvg_model::Tvg<u64> {
    scale_free_temporal(NODES, HORIZON, 29)
}

/// Serializes `index` to a scratch file under `label` and reopens it.
fn file_twin(index: &TvgIndex<'_, u64>, label: &str) -> (ShardedIndex<u64>, std::path::PathBuf) {
    let path = scratch(label);
    write_tvgi(index, 4, None, &path).expect("scratch .tvgi writes");
    let mapped = ShardedIndex::open(&path).expect("just-written file opens");
    (mapped, path)
}

fn bench_serialize(c: &mut Criterion) {
    let g = graph();
    let index = TvgIndex::compile(&g, HORIZON);
    eprintln!(
        "mmap_query workload: {} nodes, {} edges, horizon {HORIZON}, {} edge events",
        g.num_nodes(),
        g.num_edges(),
        index.num_edge_events()
    );
    let mut group = c.benchmark_group("mmap_query_serialize");
    group.sample_size(10);
    for shards in [1u32, 4, 16] {
        let path = scratch(&format!("s{shards}"));
        group.bench_with_input(BenchmarkId::new("write", shards), &index, |b, index| {
            b.iter(|| {
                write_tvgi(index, shards, None, &path)
                    .expect("writes")
                    .bytes
            });
        });
        group.bench_with_input(BenchmarkId::new("open", shards), &path, |b, path| {
            b.iter(|| {
                ShardedIndex::<u64>::open(path)
                    .expect("opens")
                    .num_edge_events()
            });
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

fn bench_foremost_tree(c: &mut Criterion) {
    let g = graph();
    let index = TvgIndex::compile(&g, HORIZON);
    let (mapped, path) = file_twin(&index, "tree");
    let limits = SearchLimits::new(HORIZON, 32);
    let src = NodeId::from_index(0);
    let mut group = c.benchmark_group("mmap_query_foremost_tree");
    group.sample_size(10);
    for (plabel, policy) in [
        ("nowait", WaitingPolicy::NoWait),
        ("bounded3", WaitingPolicy::Bounded(3)),
        ("unbounded", WaitingPolicy::Unbounded),
    ] {
        // Equality before timing: identical arrivals at every node.
        let on_compiled = foremost_tree(&index, src, &0u64, &policy, &limits);
        let on_mapped = foremost_tree(&mapped, src, &0u64, &policy, &limits);
        for d in 0..NODES {
            let node = NodeId::from_index(d);
            assert_eq!(
                on_compiled.arrival(node),
                on_mapped.arrival(node),
                "{plabel}: arrival at {node} diverges between index forms"
            );
        }
        group.bench_with_input(
            BenchmarkId::new("compiled", plabel),
            &policy,
            |b, policy| {
                b.iter(|| foremost_tree(&index, src, &0u64, policy, &limits).num_reached());
            },
        );
        group.bench_with_input(BenchmarkId::new("mapped", plabel), &policy, |b, policy| {
            b.iter(|| foremost_tree(&mapped, src, &0u64, policy, &limits).num_reached());
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// Structural traversal: adjacency list, destination, and monotone flag
/// of every edge out of every node, summed so nothing is dead code.
fn scan<T, I>(index: &I, nodes: usize) -> usize
where
    T: tvg_model::Time,
    I: TemporalIndex<T>,
{
    let mut acc = 0usize;
    for n in 0..nodes {
        for e in index.out_edges(NodeId::from_index(n)).iter() {
            acc += index.dst(e).index();
            acc += usize::from(index.arrival_is_monotone(e));
        }
    }
    acc
}

fn bench_scan(c: &mut Criterion) {
    let g = graph();
    let index = TvgIndex::compile(&g, HORIZON);
    let (mapped, path) = file_twin(&index, "scan");
    assert_eq!(
        scan(&index, NODES),
        scan(&mapped, NODES),
        "structural scan diverges between index forms"
    );
    let mut group = c.benchmark_group("mmap_query_scan");
    group.sample_size(10);
    group.bench_function("compiled", |b| b.iter(|| scan(&index, NODES)));
    group.bench_function("mapped", |b| b.iter(|| scan(&mapped, NODES)));
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_serialize, bench_foremost_tree, bench_scan);
criterion_main!(benches);
