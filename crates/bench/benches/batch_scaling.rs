//! Thread-scaling benchmark for the batch-query runtime (experiment E8).
//!
//! Workload: the scale-free temporal contact network at a size whose
//! compiled timeline holds hundreds of thousands of edge events, far
//! beyond the commuter-line fixtures. The measured operation is the
//! `ReachabilityMatrix` / `delivery_ratio` shape — a slice of
//! all-destinations single-source engine runs sharing one compiled
//! index — executed by `BatchRunner` at 1, 2, 4, and 8 worker threads.
//!
//! The batch contract says the *output* is identical at every thread
//! count (asserted here once per policy before timing); only the
//! wall-clock should change, by up to `min(threads, cores)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_journeys::{Batch, BatchRunner, SearchLimits, WaitingPolicy};
use tvg_model::generators::scale_free_temporal;
use tvg_model::{NodeId, Tvg, TvgIndex};

/// E8 workload: large enough that one batch is hundreds of engine runs
/// over a six-figure event timeline, small enough to iterate.
fn workload() -> (Tvg<u64>, u64) {
    (scale_free_temporal(20_000, 256, 42), 256)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let (g, horizon) = workload();
    let index = TvgIndex::compile(&g, horizon);
    eprintln!(
        "batch_scaling workload: {} nodes, {} edges, horizon {horizon}, {} edge events, \
         {} cores available",
        g.num_nodes(),
        g.num_edges(),
        index.num_edge_events(),
        std::thread::available_parallelism().map_or(1, usize::from),
    );
    // A spread of sources across the id range (hubs are low ids in the
    // preferential-attachment order, so a stride mixes hubs and leaves).
    let sources: Vec<NodeId> = (0..g.num_nodes())
        .step_by(g.num_nodes() / 96)
        .map(NodeId::from_index)
        .collect();
    let limits = SearchLimits::new(horizon, 16);
    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(5);
    for (plabel, policy) in [
        ("bounded4", WaitingPolicy::Bounded(4)),
        ("unbounded", WaitingPolicy::Unbounded),
    ] {
        let serial =
            BatchRunner::new(&index, Batch::serial()).run_sources(&sources, &0, &policy, &limits);
        for threads in [1usize, 2, 4, 8] {
            let runner = BatchRunner::new(&index, Batch::threads(threads));
            // The determinism contract, checked on the bench workload
            // itself before timing it.
            let out = runner.run_sources(&sources, &0, &policy, &limits);
            assert_eq!(out.stats(), serial.stats(), "{plabel} x{threads}");
            assert!(
                sources.iter().enumerate().all(|(i, _)| g
                    .nodes()
                    .all(|d| out.trees()[i].arrival(d) == serial.trees()[i].arrival(d))),
                "{plabel} x{threads}: thread count changed arrivals"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("all_sources_{plabel}"), threads),
                &threads,
                |b, _| {
                    b.iter(|| {
                        runner
                            .run_sources(&sources, &0, &policy, &limits)
                            .stats()
                            .runs
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
