//! Snapshot-publication benchmark for the serve path (experiment E13).
//!
//! The workload is a large scale-free temporal contact graph replayed
//! as a live feed in fixed-size ingest ticks; after every tick the
//! writer publishes a retained snapshot, exactly like the serve
//! runtime's `EpochRing` (retention is what forces copy-on-write on
//! the live side). Two publication strategies:
//!
//! * `persistent`: `TvgStream::snapshot()` — the structure-sharing
//!   clone over persistent chunked columns; cost is O(chunk handles +
//!   tails), independent of how much schedule has accumulated;
//! * `flat_clone`: a deep copy of every column the snapshot exposes
//!   (presence sets, adjacency lists, destinations, monotonicity
//!   cache, the event timeline, and the graph) — what publication
//!   cost before the persistent refactor, O(index).
//!
//! Besides the criterion timings the bench prints the per-publish cost
//! at ¼, ½, ¾ and full ingest: flat-clone cost grows with accumulated
//! size while persistent publication stays flat, and the setup asserts
//! the ≥5× end-to-end publication speedup E13 claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use tvg_model::generators::scale_free_temporal;
use tvg_model::stream::{LiveIndex, StreamEvent, TvgStream};
use tvg_model::{EdgeEvent, EdgeId, IntervalSet, NodeId, Tvg};

const HORIZON: u64 = 48;
const BATCH: usize = 512;

fn workload(n: usize) -> (TvgStream<u64>, Vec<StreamEvent<u64>>) {
    let g = scale_free_temporal(n, HORIZON, 13);
    TvgStream::replay_of(&g, &HORIZON).expect("bench horizons are small")
}

/// Everything a pre-persistent snapshot had to deep-copy per epoch: the
/// full flat materialization of the live index's query surface.
#[allow(dead_code)] // retained wholesale: the copies ARE the cost
struct FlatSnapshot {
    g: Tvg<u64>,
    horizon: u64,
    presence: Vec<IntervalSet<u64>>,
    arrival_monotone: Vec<bool>,
    adjacency: Vec<Vec<EdgeId>>,
    dsts: Vec<NodeId>,
    events: Vec<EdgeEvent<u64>>,
}

fn flat_clone(index: &LiveIndex<u64>) -> FlatSnapshot {
    let g = index.tvg().clone();
    let edges: Vec<EdgeId> = g.edges().collect();
    FlatSnapshot {
        horizon: *index.horizon(),
        presence: edges.iter().map(|&e| index.presence(e).clone()).collect(),
        arrival_monotone: edges
            .iter()
            .map(|&e| index.arrival_is_monotone(e))
            .collect(),
        adjacency: g.nodes().map(|n| index.out_edges(n).to_vec()).collect(),
        dsts: edges.iter().map(|&e| index.dst(e)).collect(),
        events: index.edge_events().cloned().collect(),
        g,
    }
}

/// Runs the full feed publishing one retained snapshot per tick with
/// `publish`, returning (total publish nanos, per-publish nanos at each
/// quartile of the feed).
fn run_publish<S>(
    base: &TvgStream<u64>,
    events: &[StreamEvent<u64>],
    publish: impl Fn(&TvgStream<u64>) -> S,
) -> (u128, [u128; 4]) {
    let mut stream = base.clone();
    let ticks: Vec<_> = events.chunks(BATCH).collect();
    let quartiles = [
        ticks.len() / 4,
        ticks.len() / 2,
        3 * ticks.len() / 4,
        ticks.len() - 1,
    ];
    let mut retained = Vec::with_capacity(ticks.len() + 1);
    retained.push(publish(&stream));
    let mut total = 0u128;
    let mut at_quartile = [0u128; 4];
    for (i, tick) in ticks.iter().enumerate() {
        stream.ingest(tick).expect("replay is valid");
        let t = Instant::now();
        retained.push(publish(&stream));
        let nanos = t.elapsed().as_nanos();
        total += nanos;
        for (q, &qi) in quartiles.iter().enumerate() {
            if qi == i {
                at_quartile[q] = nanos;
            }
        }
    }
    (total, at_quartile)
}

fn bench_snapshot_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_publish");
    group.sample_size(10);
    for n in [1000usize, 5000] {
        let (base, events) = workload(n);
        let ticks = events.len().div_ceil(BATCH);
        let (persistent_total, persistent_q) = run_publish(&base, &events, TvgStream::snapshot);
        let (flat_total, flat_q) = run_publish(&base, &events, |s| flat_clone(s.index()));
        eprintln!(
            "snapshot_publish workload: n={n}, {} events, {ticks} ticks of {BATCH}",
            events.len()
        );
        eprintln!(
            "  persistent publish: total {} µs, per-publish at 1/4 2/4 3/4 4/4 = {:?} ns",
            persistent_total / 1000,
            persistent_q
        );
        eprintln!(
            "  flat-clone publish: total {} µs, per-publish at 1/4 2/4 3/4 4/4 = {:?} ns",
            flat_total / 1000,
            flat_q
        );
        if n >= 5000 {
            // The E13 acceptance claim: structure sharing makes epoch
            // publication at least 5x cheaper than deep copies on the
            // large live schedule.
            assert!(
                flat_total >= 5 * persistent_total,
                "publication speedup below 5x: flat {flat_total} ns vs persistent {persistent_total} ns"
            );
        }
        group.bench_with_input(BenchmarkId::new("persistent", n), &n, |b, _| {
            b.iter(|| run_publish(&base, &events, TvgStream::snapshot).0);
        });
        group.bench_with_input(BenchmarkId::new("flat_clone", n), &n, |b, _| {
            b.iter(|| run_publish(&base, &events, |s| flat_clone(s.index())).0);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot_publish);
criterion_main!(benches);
