//! Journey-search bench: foremost-journey cost vs ring size and policy
//! (the `(node, time)` configuration space grows with both).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_journeys::{foremost_journey, SearchLimits, WaitingPolicy};
use tvg_model::generators::ring_bus_tvg;
use tvg_model::NodeId;

fn bench_foremost(c: &mut Criterion) {
    let mut group = c.benchmark_group("journeys_foremost_ring");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let g = ring_bus_tvg(n, n as u64, 'r');
        let limits = SearchLimits::new(4 * n as u64, n + 2);
        for (label, policy) in [
            ("nowait", WaitingPolicy::NoWait),
            ("bounded2", WaitingPolicy::Bounded(2)),
            ("unbounded", WaitingPolicy::Unbounded),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                b.iter(|| {
                    foremost_journey(
                        g,
                        NodeId::from_index(0),
                        NodeId::from_index(n - 1),
                        &0,
                        &policy,
                        &limits,
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_foremost);
criterion_main!(benches);
