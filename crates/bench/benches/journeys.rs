//! Journey-search bench: foremost-journey cost vs ring size and policy
//! (the `(node, time)` configuration space grows with both).
//!
//! The index is compiled once per graph outside the timing loop, so the
//! numbers isolate query cost; one-time compilation is measured
//! separately in `temporal_index.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_journeys::engine::foremost_to;
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_model::generators::ring_bus_tvg;
use tvg_model::{NodeId, TvgIndex};

fn bench_foremost(c: &mut Criterion) {
    let mut group = c.benchmark_group("journeys_foremost_ring");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let g = ring_bus_tvg(n, n as u64, 'r');
        let horizon = 4 * n as u64;
        let limits = SearchLimits::new(horizon, n + 2);
        let index = TvgIndex::compile(&g, horizon);
        for (label, policy) in [
            ("nowait", WaitingPolicy::NoWait),
            ("bounded2", WaitingPolicy::Bounded(2)),
            ("unbounded", WaitingPolicy::Unbounded),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, _| {
                b.iter(|| {
                    foremost_to(
                        &index,
                        NodeId::from_index(0),
                        NodeId::from_index(n - 1),
                        &0,
                        &policy,
                        &limits,
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_foremost);
criterion_main!(benches);
