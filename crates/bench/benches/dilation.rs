//! E4 bench: Theorem-2.3 harness cost — full language comparison between
//! the dilated/bounded and original/nowait automata, vs dilation bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_bench::experiments::staggered_automaton;
use tvg_expressivity::dilation::dilation_disagreements;
use tvg_journeys::SearchLimits;
use tvg_langs::Alphabet;

fn bench_dilation_check(c: &mut Criterion) {
    let aut = staggered_automaton();
    let alphabet = Alphabet::ab();
    let mut group = c.benchmark_group("e4_dilation_disagreements");
    group.sample_size(10);
    for d in [1u64, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                let limits = SearchLimits::new(40, 5);
                let witnesses = dilation_disagreements(&aut, d, &alphabet, 4, &limits);
                assert!(witnesses.is_empty());
            });
        });
    }
    group.finish();
}

fn bench_dilate_transform(c: &mut Criterion) {
    let aut = staggered_automaton();
    let mut group = c.benchmark_group("e4_dilate_transform");
    for d in [1u64, 64, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| std::hint::black_box(aut.dilate(d)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dilation_check, bench_dilate_transform);
criterion_main!(benches);
