//! Reader-scaling benchmark for the serve runtime (experiment E11).
//!
//! The workload is a scale-free temporal contact schedule replayed as a
//! live feed in 8 ingest ticks while a seeded synthetic client mix
//! (foremost / matrix / beaconing broadcast, Poisson-style arrivals) is
//! answered from epoch-pinned lock-free snapshots. The swept knob is
//! the reader thread count: the logical outcome is asserted identical
//! at every count before timing starts (the property the golden gate
//! pins), so the measured spread is pure service parallelism — snapshot
//! acquisition, grouped engine passes, and epoch waits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_journeys::{SearchLimits, WaitingPolicy};
use tvg_model::generators::scale_free_temporal;
use tvg_model::stream::{StreamEvent, TvgStream};
use tvg_model::Tvg;
use tvg_serve::{generate_load, serve, LoadSpec, ServeConfig, ServeOutcome, TimedRequest};

const HORIZON: u64 = 48;
const TICKS: usize = 8;
const REQUESTS: usize = 256;

fn workload(n: usize) -> (Tvg<u64>, Vec<Vec<StreamEvent<u64>>>, Vec<TimedRequest>) {
    let g = scale_free_temporal(n, HORIZON, 23);
    let (_, events) = TvgStream::replay_of(&g, &HORIZON).expect("bench horizons are small");
    let chunk = events.len().div_ceil(TICKS).max(1);
    let ticks = events.chunks(chunk).map(<[_]>::to_vec).collect();
    let requests = generate_load(&LoadSpec {
        requests: REQUESTS,
        mean_gap: 1,
        mix: (4, 2, 1),
        nodes: g.num_nodes(),
        seed_instant: 0,
        seed: 29,
    });
    (g, ticks, requests)
}

fn run_serve(
    g: &Tvg<u64>,
    ticks: &[Vec<StreamEvent<u64>>],
    requests: &[TimedRequest],
    readers: usize,
) -> ServeOutcome {
    let (stream, _) = TvgStream::replay_of(g, &HORIZON).expect("bench horizons are small");
    serve(
        stream,
        ticks,
        requests,
        &ServeConfig {
            readers,
            policy: WaitingPolicy::Bounded(3),
            limits: SearchLimits::new(HORIZON, 16),
            start: 0,
        },
    )
    .expect("replay is a valid feed")
}

fn bench_serve_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_scaling");
    group.sample_size(10);
    for n in [100usize, 300] {
        let (g, ticks, requests) = workload(n);
        eprintln!(
            "serve_scaling workload: n={n}, {} ticks, {REQUESTS} requests",
            ticks.len()
        );
        // Reader counts must agree logically before we time them.
        let reference = run_serve(&g, &ticks, &requests, 1);
        for readers in [2usize, 4] {
            let outcome = run_serve(&g, &ticks, &requests, readers);
            assert_eq!(reference.served, outcome.served, "readers={readers}");
            assert_eq!(reference.stats, outcome.stats, "readers={readers}");
        }
        for readers in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("readers{readers}"), n),
                &n,
                |b, _| {
                    b.iter(|| run_serve(&g, &ticks, &requests, readers));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serve_scaling);
criterion_main!(benches);
