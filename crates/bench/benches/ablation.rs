//! E6 benches: design-choice ablations called out in DESIGN.md —
//! prime-size impact on Figure-1 clock arithmetic, and horizon impact on
//! waiting-language extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_bench::experiments::staggered_automaton;
use tvg_expressivity::anbn::{anbn_word, AnbnAutomaton};
use tvg_journeys::{SearchLimits, WaitingPolicy};

fn bench_prime_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_prime_choice_accept_n16");
    group.sample_size(10);
    let w = anbn_word(16);
    for (p, q) in [(2u64, 3u64), (13, 17), (101, 103)] {
        let aut = AnbnAutomaton::new(p, q).expect("distinct primes");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}_q{q}")),
            &w,
            |b, w| {
                b.iter(|| assert!(aut.accepts_nowait(std::hint::black_box(w))));
            },
        );
    }
    group.finish();
}

fn bench_horizon(c: &mut Criterion) {
    let aut = staggered_automaton();
    let mut group = c.benchmark_group("e6_horizon_language_extraction");
    group.sample_size(10);
    for horizon in [8u64, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, &h| {
            b.iter(|| {
                let limits = SearchLimits::new(h, 7);
                aut.language_upto(&WaitingPolicy::Unbounded, &limits, 6)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prime_choice, bench_horizon);
criterion_main!(benches);
