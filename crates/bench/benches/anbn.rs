//! E1 bench: Figure-1 acceptance cost vs word length (bigint clock
//! arithmetic dominates; growth should track the quadratic cost of
//! multiplying pⁿqⁿ-sized numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_expressivity::anbn::{anbn_word, AnbnAutomaton};

fn bench_accept(c: &mut Criterion) {
    let aut = AnbnAutomaton::smallest();
    let mut group = c.benchmark_group("e1_figure1_accept");
    group.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let w = anbn_word(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| {
                assert!(aut.accepts_nowait(std::hint::black_box(w)));
            });
        });
    }
    group.finish();
}

fn bench_reject(c: &mut Criterion) {
    let aut = AnbnAutomaton::smallest();
    let mut group = c.benchmark_group("e1_figure1_reject_near_miss");
    group.sample_size(10);
    for n in [4usize, 16] {
        let w: tvg_langs::Word = format!("{}{}", "a".repeat(n), "b".repeat(n - 1))
            .parse()
            .expect("ascii");
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| {
                assert!(!aut.accepts_nowait(std::hint::black_box(w)));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accept, bench_reject);
criterion_main!(benches);
