//! E2 bench: Theorem-2.1 acceptance cost when the schedule runs a real
//! decider (grammar vs Turing machine), vs word length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tvg_expressivity::nowait_power::DeciderAutomaton;
use tvg_langs::{machines, Alphabet, Grammar, Word};

fn anbncn_word(n: usize) -> Word {
    format!("{}{}{}", "a".repeat(n), "b".repeat(n), "c".repeat(n))
        .parse()
        .expect("ascii")
}

fn bench_grammar_schedule(c: &mut Criterion) {
    let g = Grammar::anbn();
    let aut = DeciderAutomaton::new(Alphabet::ab(), Arc::new(move |w| g.recognizes(w)));
    let mut group = c.benchmark_group("e2_grammar_schedule_accept");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let w: Word = format!("{}{}", "a".repeat(n), "b".repeat(n))
            .parse()
            .expect("ascii");
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| assert!(aut.accepts_nowait(std::hint::black_box(w))));
        });
    }
    group.finish();
}

fn bench_tm_schedule(c: &mut Criterion) {
    let aut = DeciderAutomaton::from_turing_machine(Alphabet::abc(), machines::anbncn(), 1_000_000);
    let mut group = c.benchmark_group("e2_turing_machine_schedule_accept");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        let w = anbncn_word(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| assert!(aut.accepts_nowait(std::hint::black_box(w))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grammar_schedule, bench_tm_schedule);
criterion_main!(benches);
