//! E3 bench: Theorem-2.2 compiler cost — periodic TVG → NFA → minimal
//! DFA, vs period length (state space is nodes × period).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tvg_bench::experiments::random_periodic_automaton;
use tvg_expressivity::wait_regular::{eventually_periodic_to_nfa, periodic_to_nfa};
use tvg_journeys::WaitingPolicy;
use tvg_langs::Alphabet;

fn bench_compile(c: &mut Criterion) {
    let alphabet = Alphabet::ab();
    let mut group = c.benchmark_group("e3_periodic_to_nfa");
    group.sample_size(10);
    for period in [2u64, 4, 8, 16] {
        let aut = random_periodic_automaton(7, period);
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            b.iter(|| {
                periodic_to_nfa(&aut, p, &WaitingPolicy::Unbounded, &alphabet).expect("periodic")
            });
        });
    }
    group.finish();
}

fn bench_compile_and_minimize(c: &mut Criterion) {
    let alphabet = Alphabet::ab();
    let mut group = c.benchmark_group("e3_compile_determinize_minimize");
    group.sample_size(10);
    for period in [2u64, 4, 8] {
        let aut = random_periodic_automaton(7, period);
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            b.iter(|| {
                periodic_to_nfa(&aut, p, &WaitingPolicy::Unbounded, &alphabet)
                    .expect("periodic")
                    .to_dfa()
                    .minimize()
            });
        });
    }
    group.finish();
}

fn bench_eventually_periodic(c: &mut Criterion) {
    let alphabet = Alphabet::ab();
    let mut group = c.benchmark_group("e3_eventually_periodic_to_nfa");
    group.sample_size(10);
    for period in [2u64, 4, 8] {
        let aut = random_periodic_automaton(7, period);
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            b.iter(|| {
                eventually_periodic_to_nfa(&aut, p, &WaitingPolicy::Unbounded, &alphabet)
                    .expect("periodic")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_compile_and_minimize,
    bench_eventually_periodic
);
criterion_main!(benches);
